package rules

import (
	"fmt"
	"math/rand"
	"testing"

	"terids/internal/repository"
	"terids/internal/tokens"
	"terids/internal/tuple"
)

// buildCorrelatedRepo makes a repository where attribute 1 (Symptom)
// determines attribute 2 (Diagnosis) within each Gender group: entities of
// the same disease share most symptom tokens and the same diagnosis.
func buildCorrelatedRepo(t *testing.T, n int) *repository.Repository {
	t.Helper()
	r := rand.New(rand.NewSource(77))
	diseases := []struct {
		symptoms  []string
		diagnosis string
	}{
		{[]string{"thirst", "weight", "loss", "blurred", "vision"}, "diabetes"},
		{[]string{"fever", "cough", "fatigue", "aches"}, "flu"},
		{[]string{"red", "eye", "itchy", "tears"}, "conjunctivitis"},
	}
	genders := []string{"male", "female"}
	var recs []*tuple.Record
	for i := 0; i < n; i++ {
		d := diseases[i%len(diseases)]
		// Drop one random symptom token for variety.
		drop := r.Intn(len(d.symptoms))
		sym := ""
		for k, s := range d.symptoms {
			if k != drop {
				sym += s + " "
			}
		}
		recs = append(recs, tuple.MustRecord(schema, fmt.Sprintf("s%d", i), 0, 0,
			[]string{genders[i%2], sym, d.diagnosis}))
	}
	repo, err := repository.Build(schema, recs)
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

func TestDetectFindsRules(t *testing.T) {
	repo := buildCorrelatedRepo(t, 60)
	set := Detect(repo, DefaultDetectConfig())
	if set.Len() == 0 {
		t.Fatal("no rules detected on a correlated repository")
	}
	// Symptom and Diagnosis are mutually determined within a disease, so
	// both must gain rules. Gender is independent of the other attributes
	// in this fixture (dep distance is 0 or 1), so single-determinant
	// Gender-dependent rules must be rejected as too loose. (Narrow
	// two-determinant bands can legitimately pin gender on small fixtures,
	// so only single-determinant rules are asserted on.)
	for _, j := range []int{1, 2} {
		if len(set.ForDependent(j)) == 0 {
			t.Errorf("no rules with dependent attribute %d", j)
		}
	}
	// (Editing rules can still pin Gender through a constant carried by
	// same-gender samples only, and narrow two-determinant bands can do so
	// on small fixtures; both are sound with respect to the observed data,
	// so only single-determinant interval rules are asserted on.)
	for _, r := range set.ForDependent(0) {
		if len(r.Determinants) == 1 && r.Determinants[0].Kind == Interval {
			t.Errorf("found single-interval rule for the undetermined Gender attribute: %v", r)
		}
	}
	// A Symptom -> Diagnosis DD in the closest band must exist and be
	// tight: same disease pairs share symptoms and identical diagnoses.
	found := false
	for _, r := range set.ForDependent(2) {
		if r.Kind != KindDD || len(r.Determinants) != 1 {
			continue
		}
		c := r.Determinants[0]
		if c.Attr == 1 && c.Kind == Interval && c.Min == 0 && r.DepMax <= 0.2 {
			found = true
		}
	}
	if !found {
		t.Error("expected a tight band-0 DD Symptom→Diagnosis")
	}
	// CDD rules conditioned on Gender constants must exist.
	cddFound := false
	for _, r := range set.All() {
		if r.Kind != KindCDD {
			continue
		}
		for _, c := range r.Determinants {
			if c.Kind == Const && (c.Value == "male" || c.Value == "female") {
				cddFound = true
			}
		}
	}
	if !cddFound {
		t.Error("expected gender-conditioned CDD rules")
	}
}

func TestDetectRuleMultiplicity(t *testing.T) {
	// The paper reports thousands of CDDs on small repositories; our miner
	// must likewise produce many rules (bands × pairs × constants).
	repo := buildCorrelatedRepo(t, 90)
	set := Detect(repo, DefaultDetectConfig())
	if set.Len() < 20 {
		t.Fatalf("only %d rules detected; expected a multiplicity of rules", set.Len())
	}
}

func TestDetectEmptyAndTinyRepo(t *testing.T) {
	repo, err := repository.Build(schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if set := Detect(repo, DefaultDetectConfig()); set.Len() != 0 {
		t.Fatal("empty repository must yield no rules")
	}
	one := tuple.MustRecord(schema, "s0", 0, 0, []string{"male", "fever", "flu"})
	repo2, err := repository.Build(schema, []*tuple.Record{one})
	if err != nil {
		t.Fatal(err)
	}
	if set := Detect(repo2, DefaultDetectConfig()); set.Len() != 0 {
		t.Fatal("single-sample repository must yield no rules")
	}
}

func TestDetectDeterministic(t *testing.T) {
	repo := buildCorrelatedRepo(t, 40)
	cfg := DefaultDetectConfig()
	a := Detect(repo, cfg)
	b := Detect(repo, cfg)
	if a.Len() != b.Len() {
		t.Fatalf("rule counts differ across runs: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.All() {
		if a.All()[i].String() != b.All()[i].String() {
			t.Fatalf("rule %d differs: %v vs %v", i, a.All()[i], b.All()[i])
		}
	}
}

func TestDetectedRulesAreSound(t *testing.T) {
	// Soundness: for every mined rule and every sample pair satisfying its
	// determinant constraints, the dependent distance must lie within the
	// mined interval. This holds by construction on the pairs the miner
	// saw; verify on ALL pairs for unsampled mining.
	repo := buildCorrelatedRepo(t, 30)
	cfg := DefaultDetectConfig()
	cfg.PairSample = 0 // examine all pairs
	set := Detect(repo, cfg)
	samples := repo.Samples()
	for _, r := range set.All() {
		if r.Kind == KindEditing {
			continue // editing rules assert near-equality, tested below
		}
		for i := 0; i < len(samples); i++ {
			for k := i + 1; k < len(samples); k++ {
				a, b := samples[i], samples[k]
				if !pairSatisfies(r, a, b) {
					continue
				}
				dd := tokens.JaccardDistance(a.Tokens(r.Dependent), b.Tokens(r.Dependent))
				if dd < r.DepMin-1e-9 || dd > r.DepMax+1e-9 {
					t.Fatalf("rule %v violated by pair (%s, %s): dep dist %v", r, a.RID, b.RID, dd)
				}
			}
		}
	}
}

// pairSatisfies checks Definition 3 on a complete pair.
func pairSatisfies(r *Rule, a, b *tuple.Record) bool {
	for _, c := range r.Determinants {
		switch c.Kind {
		case Const:
			if !a.Tokens(c.Attr).Equal(c.Toks) || !b.Tokens(c.Attr).Equal(c.Toks) {
				return false
			}
		case Interval:
			d := tokens.JaccardDistance(a.Tokens(c.Attr), b.Tokens(c.Attr))
			if d < c.Min || d > c.Max {
				return false
			}
		}
	}
	return true
}

func TestEditingRulesSound(t *testing.T) {
	repo := buildCorrelatedRepo(t, 30)
	cfg := DefaultDetectConfig()
	cfg.PairSample = 0
	set := Detect(repo, cfg)
	samples := repo.Samples()
	for _, r := range set.All() {
		if r.Kind != KindEditing {
			continue
		}
		c := r.Determinants[0]
		var first tokens.Set
		for _, s := range samples {
			if !s.Tokens(c.Attr).Equal(c.Toks) {
				continue
			}
			if first == nil {
				first = s.Tokens(r.Dependent)
				continue
			}
			if d := tokens.JaccardDistance(first, s.Tokens(r.Dependent)); d > cfg.EditingMaxDep+1e-9 {
				t.Fatalf("editing rule %v violated: dep dist %v", r, d)
			}
		}
	}
}

func TestSamplePairs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Small population: all pairs.
	all := samplePairs(5, 100, rng)
	if len(all) != 10 {
		t.Fatalf("all pairs of 5 = %d, want 10", len(all))
	}
	// Capped: exactly limit distinct pairs.
	capped := samplePairs(100, 50, rng)
	if len(capped) != 50 {
		t.Fatalf("capped pairs = %d, want 50", len(capped))
	}
	seen := map[[2]int]bool{}
	for _, p := range capped {
		if p[0] >= p[1] {
			t.Fatalf("pair not ordered: %v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func TestBandHelpers(t *testing.T) {
	bands := []float64{0.1, 0.3, 0.5}
	cases := []struct {
		d    float64
		want int
	}{
		{0, 0}, {0.1, 0}, {0.11, 1}, {0.3, 1}, {0.45, 2}, {0.5, 2}, {0.51, -1}, {1, -1},
	}
	for _, c := range cases {
		if got := band(c.d, bands); got != c.want {
			t.Errorf("band(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	if lo, hi := bandBounds(0, bands); lo != 0 || hi != 0.1 {
		t.Error("bandBounds(0) wrong")
	}
	if lo, hi := bandBounds(2, bands); lo != 0.3 || hi != 0.5 {
		t.Error("bandBounds(2) wrong")
	}
}
