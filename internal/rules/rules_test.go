package rules

import (
	"fmt"
	"testing"

	"terids/internal/tokens"
	"terids/internal/tuple"
)

var schema = tuple.MustSchema("Gender", "Symptom", "Diagnosis")

func rec(vals ...string) *tuple.Record {
	return tuple.MustRecord(schema, "r", 0, 0, vals)
}

// paperCDD is the motivating rule of Section 2.2:
// (Gender, Symptom → Diagnosis, {male, [0,0.3], [0,0.2]}).
func paperCDD() *Rule {
	return &Rule{
		Kind:      KindCDD,
		Dependent: 2,
		Determinants: []Constraint{
			{Attr: 0, Kind: Const, Value: "male", Toks: tokens.New("male")},
			{Attr: 1, Kind: Interval, Min: 0, Max: 0.3},
		},
		DepMin: 0, DepMax: 0.2,
	}
}

func TestAppliesTo(t *testing.T) {
	r := paperCDD()
	// a2 from Table 1: male, symptoms present, diagnosis missing.
	a2 := rec("male", "loss of weight, blurred vision", "-")
	if !r.AppliesTo(a2) {
		t.Fatal("rule must apply to a2")
	}
	female := rec("female", "fever", "-")
	if r.AppliesTo(female) {
		t.Fatal("const mismatch must reject")
	}
	missingDet := rec("-", "fever", "-")
	if r.AppliesTo(missingDet) {
		t.Fatal("missing determinant must reject")
	}
}

func TestSampleMatches(t *testing.T) {
	r := paperCDD()
	a2 := rec("male", "loss of weight, blurred vision", "-")
	// p1 from Section 2.2: same tokens on Symptom up to "weight loss" vs
	// "loss of weight": tokens {loss, weight} vs {blurred, loss, of,
	// vision, weight}. dist = 1 - 2/5 = 0.6 > 0.3: must NOT match.
	p1 := rec("male", "weight loss", "diabetes")
	if r.SampleMatches(a2, p1) {
		t.Fatal("p1 too far on Symptom; must not match")
	}
	// A closer sample within 0.3.
	p2 := rec("male", "loss of weight, blurred vision, thirst", "diabetes")
	// dist = 1 - 5/6 ≈ 0.167 <= 0.3.
	if !r.SampleMatches(a2, p2) {
		t.Fatal("p2 must match")
	}
	// Wrong gender sample.
	p3 := rec("female", "loss of weight, blurred vision", "flu")
	if r.SampleMatches(a2, p3) {
		t.Fatal("const constraint must bind the sample too")
	}
}

func TestIntervalMinRespected(t *testing.T) {
	// Banded constraint [0.2, 0.5]: identical values (dist 0) must NOT
	// match — this is the relaxed εmin of Definition 3.
	r := &Rule{
		Kind:      KindDD,
		Dependent: 2,
		Determinants: []Constraint{
			{Attr: 1, Kind: Interval, Min: 0.2, Max: 0.5},
		},
		DepMin: 0, DepMax: 0.3,
	}
	a := rec("x", "fever cough", "-")
	same := rec("y", "fever cough", "flu")
	if r.SampleMatches(a, same) {
		t.Fatal("distance 0 below εmin must not match")
	}
	mid := rec("y", "fever cough headache", "flu") // dist = 1/3
	if !r.SampleMatches(a, mid) {
		t.Fatal("distance inside band must match")
	}
}

func TestSetAddValidation(t *testing.T) {
	s := NewSet(3)
	bad := []*Rule{
		{Dependent: 5, Determinants: []Constraint{{Attr: 0, Kind: Interval, Max: 0.1}}},
		{Dependent: 1, Determinants: nil, DepMax: 0.1},
		{Dependent: 1, Determinants: []Constraint{{Attr: 1, Kind: Interval, Max: 0.1}}},
		{Dependent: 1, Determinants: []Constraint{{Attr: 0, Kind: Interval, Min: 0.5, Max: 0.1}}},
		{Dependent: 1, Determinants: []Constraint{{Attr: 0, Kind: Interval, Max: 0.1}}, DepMin: 0.5, DepMax: 0.2},
	}
	for i, r := range bad {
		if err := s.Add(r); err == nil {
			t.Errorf("bad rule %d accepted: %v", i, r)
		}
	}
	good := paperCDD()
	if err := s.Add(good); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || len(s.ForDependent(2)) != 1 || len(s.ForDependent(0)) != 0 {
		t.Fatal("set bookkeeping wrong")
	}
}

func TestFilter(t *testing.T) {
	s := NewSet(3)
	s.MustAdd(paperCDD())
	s.MustAdd(&Rule{
		Kind: KindDD, Dependent: 2,
		Determinants: []Constraint{{Attr: 1, Kind: Interval, Max: 0.3}},
		DepMax:       0.4,
	})
	s.MustAdd(&Rule{
		Kind: KindEditing, Dependent: 1,
		Determinants: []Constraint{{Attr: 0, Kind: Const, Value: "male", Toks: tokens.New("male")}},
		DepMax:       0.1,
	})
	dd := s.Filter(KindDD)
	if dd.Len() != 1 || dd.All()[0].Kind != KindDD {
		t.Fatalf("Filter(DD) = %d rules", dd.Len())
	}
	both := s.Filter(KindDD, KindCDD)
	if both.Len() != 2 {
		t.Fatalf("Filter(DD, CDD) = %d rules", both.Len())
	}
	// Filtered sets are deep-enough copies: mutating the copy's rule does
	// not corrupt the original's ID ordering.
	both.All()[0].DepMax = 0.99
	if s.All()[0].DepMax == 0.99 {
		t.Fatal("Filter must copy rules")
	}
}

func TestRuleString(t *testing.T) {
	got := paperCDD().String()
	if got == "" {
		t.Fatal("String must render something")
	}
	for _, want := range []string{"CDD", "male", "A2"} {
		if !contains1(got, want) {
			t.Errorf("String %q missing %q", got, want)
		}
	}
}

func contains1(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexStr(s, sub) >= 0)
}

func indexStr(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestKindString(t *testing.T) {
	if KindDD.String() != "DD" || KindCDD.String() != "CDD" || KindEditing.String() != "editing" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Fatal("unknown kind rendering wrong")
	}
}

func ExampleRule_String() {
	fmt.Println(paperCDD())
	// Output: CDD{A0="male",A1∈[0.00,0.30] → A2, [0.00,0.20]}
}
