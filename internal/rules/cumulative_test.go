package rules

import "testing"

func TestDetectCumulativeDDs(t *testing.T) {
	repo := buildCorrelatedRepo(t, 60)
	cfg := DefaultDetectConfig()
	cfg.Cumulative = true
	cfg.DisableCDD = true
	cfg.DisableEditing = true
	cfg.MaxDepWidth = 1.0
	set := Detect(repo, cfg)
	if set.Len() == 0 {
		t.Fatal("cumulative mining found no DDs")
	}
	for _, r := range set.All() {
		if r.Kind != KindDD {
			t.Fatalf("family toggles violated: found %v", r.Kind)
		}
		for _, c := range r.Determinants {
			if c.Kind == Interval && c.Min != 0 {
				t.Fatalf("cumulative DD must have εmin = 0, got %v", c.Min)
			}
		}
	}
	// Cumulative intervals must be at least as wide as banded ones for the
	// same data: compare total dependent width.
	banded := Detect(repo, DefaultDetectConfig())
	avgWidth := func(s *Set) float64 {
		total, n := 0.0, 0
		for _, r := range s.All() {
			if r.Kind == KindDD {
				total += r.DepMax - r.DepMin
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return total / float64(n)
	}
	if avgWidth(set) < avgWidth(banded)-1e-9 {
		t.Errorf("cumulative DDs should be looser on average: %v vs %v",
			avgWidth(set), avgWidth(banded))
	}
}

func TestDetectFamilyToggles(t *testing.T) {
	repo := buildCorrelatedRepo(t, 60)
	cfg := DefaultDetectConfig()
	cfg.DisableDD = true
	cfg.DisableEditing = true
	cfg.DisableTwoDet = true
	set := Detect(repo, cfg)
	for _, r := range set.All() {
		if r.Kind != KindCDD {
			t.Fatalf("only CDDs expected, found %v", r)
		}
	}
	cfg = DefaultDetectConfig()
	cfg.DisableDD = true
	cfg.DisableCDD = true
	cfg.DisableTwoDet = true
	set = Detect(repo, cfg)
	for _, r := range set.All() {
		if r.Kind != KindEditing {
			t.Fatalf("only editing rules expected, found %v", r)
		}
	}
}
