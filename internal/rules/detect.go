package rules

import (
	"math/rand"
	"sort"

	"terids/internal/repository"
	"terids/internal/tokens"
	"terids/internal/tuple"
)

// DetectConfig tunes the rule miner. The miner follows the detection recipe
// of Section 2.2: per dependent attribute, find determinant attributes whose
// value distances constrain the dependent distance (DDs, banded per the
// relaxed εmin of Definition 3); condition them on frequent constants of a
// third attribute (CDDs); and fall back to editing rules where intervals are
// too loose.
type DetectConfig struct {
	// Bands are the εmax breakpoints of the banded interval constraints;
	// band i is [Bands[i-1], Bands[i]] (band 0 starts at 0).
	Bands []float64
	// MaxDepWidth is the widest acceptable dependent interval A_j.I; wider
	// bands are rejected as uninformative (the "acceptable interval" test
	// of Section 2.2).
	MaxDepWidth float64
	// MinSupport is the minimum number of observed sample pairs that must
	// back a band for it to become a rule.
	MinSupport int
	// PairSample caps the number of sample pairs examined per attribute
	// pair (0 = all pairs; quadratic in |R|).
	PairSample int
	// MaxConstants caps the number of frequent conditioning constants per
	// attribute for CDD mining.
	MaxConstants int
	// EditingMaxDep is the dependent interval granted to editing rules
	// (exact-constant determinants); kept small since editing rules copy
	// values.
	EditingMaxDep float64
	// Seed drives pair sampling.
	Seed int64
	// Cumulative switches interval constraints from the paper's relaxed
	// banded form [ε_{i-1}, ε_i] to the classic DD form [0, ε_i] (Song &
	// Chen): wider intervals, more matching samples, looser dependent
	// bounds. The DD+ER baseline mines with Cumulative = true.
	Cumulative bool
	// DisableDD / DisableCDD / DisableEditing exclude a rule family from
	// mining.
	DisableDD      bool
	DisableCDD     bool
	DisableEditing bool
	// DisableTwoDet skips two-determinant interval rules (X = {x1, x2}),
	// the Level-2 lattice rules of Figure 2. Two-determinant mining uses
	// TwoDetBands (coarser than Bands to bound the rule count).
	DisableTwoDet bool
	// TwoDetBands are the band breakpoints for two-determinant rules
	// (default 0.1 steps to 0.5).
	TwoDetBands []float64
}

// DefaultDetectConfig mirrors the scale of rule detection reported by the
// paper — rule multiplicity is high ("2,500 detected CDD rules over only
// 600 tuples" on Cora), which is exactly what motivates the CDD-index.
func DefaultDetectConfig() DetectConfig {
	return DetectConfig{
		Bands:         []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5},
		MaxDepWidth:   0.6,
		MinSupport:    3,
		PairSample:    20000,
		MaxConstants:  16,
		EditingMaxDep: 0.1,
		Seed:          1,
	}
}

func (c *DetectConfig) fill() {
	if len(c.Bands) == 0 {
		c.Bands = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	sort.Float64s(c.Bands)
	if c.MaxDepWidth <= 0 {
		c.MaxDepWidth = 0.6
	}
	if c.MinSupport <= 0 {
		c.MinSupport = 3
	}
	if c.MaxConstants <= 0 {
		c.MaxConstants = 8
	}
	if c.EditingMaxDep <= 0 {
		c.EditingMaxDep = 0.1
	}
	if len(c.TwoDetBands) == 0 {
		c.TwoDetBands = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	sort.Float64s(c.TwoDetBands)
}

// Detect mines DD, CDD, and editing rules from the repository.
func Detect(repo *repository.Repository, cfg DetectConfig) *Set {
	cfg.fill()
	d := repo.Schema().D()
	set := NewSet(d)
	samples := repo.Samples()
	if len(samples) < 2 {
		return set
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pairs := samplePairs(len(samples), cfg.PairSample, rng)

	for j := 0; j < d; j++ {
		for x := 0; x < d; x++ {
			if x == j {
				continue
			}
			if !cfg.DisableDD {
				mineDD(set, samples, pairs, x, j, cfg)
			}
			if !cfg.DisableCDD {
				// Condition on each remaining attribute's frequent
				// constants.
				for c := 0; c < d; c++ {
					if c == j || c == x {
						continue
					}
					mineCDD(set, repo, samples, pairs, c, x, j, cfg)
				}
			}
			if !cfg.DisableEditing {
				mineEditing(set, repo, samples, x, j, cfg)
			}
			// Two-determinant rules use banded intervals only; the
			// cumulative (classic DD) mode mines single determinants.
			if !cfg.DisableTwoDet && !cfg.Cumulative {
				for x2 := x + 1; x2 < d; x2++ {
					if x2 == j {
						continue
					}
					mineDD2(set, samples, pairs, x, x2, j, cfg)
				}
			}
		}
	}
	return set
}

// samplePairs draws up to limit distinct unordered index pairs (all pairs
// when limit == 0 or the population is small).
func samplePairs(n, limit int, rng *rand.Rand) [][2]int {
	total := n * (n - 1) / 2
	if limit <= 0 || total <= limit {
		out := make([][2]int, 0, total)
		for i := 0; i < n; i++ {
			for k := i + 1; k < n; k++ {
				out = append(out, [2]int{i, k})
			}
		}
		return out
	}
	seen := make(map[[2]int]bool, limit)
	out := make([][2]int, 0, limit)
	for len(out) < limit {
		i, k := rng.Intn(n), rng.Intn(n)
		if i == k {
			continue
		}
		if i > k {
			i, k = k, i
		}
		p := [2]int{i, k}
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// band returns the index of the band dist falls in, or -1 if beyond the
// last breakpoint.
func band(dist float64, bands []float64) int {
	for i, hi := range bands {
		if dist <= hi {
			return i
		}
	}
	return -1
}

// bandBounds returns [lo, hi] of band i.
func bandBounds(i int, bands []float64) (lo, hi float64) {
	if i == 0 {
		return 0, bands[0]
	}
	return bands[i-1], bands[i]
}

// depStats accumulates the dependent-distance interval and support of one
// band.
type depStats struct {
	lo, hi float64
	n      int
}

func newDepStats() depStats { return depStats{lo: 2, hi: -1} }

func (s *depStats) add(d float64) {
	if d < s.lo {
		s.lo = d
	}
	if d > s.hi {
		s.hi = d
	}
	s.n++
}

// mineDD emits banded DD rules A_x → A_j: for each distance band on A_x,
// the observed dependent-distance interval, if supported and tight enough.
func mineDD(set *Set, samples []*tuple.Record, pairs [][2]int, x, j int, cfg DetectConfig) {
	stats := make([]depStats, len(cfg.Bands))
	for i := range stats {
		stats[i] = newDepStats()
	}
	for _, p := range pairs {
		a, b := samples[p[0]], samples[p[1]]
		bx := band(tokens.JaccardDistance(a.Tokens(x), b.Tokens(x)), cfg.Bands)
		if bx < 0 {
			continue
		}
		stats[bx].add(tokens.JaccardDistance(a.Tokens(j), b.Tokens(j)))
	}
	if cfg.Cumulative {
		// Classic DDs: fold bands into prefix intervals [0, ε_i].
		for i := 1; i < len(stats); i++ {
			if stats[i-1].n == 0 {
				continue
			}
			if stats[i-1].lo < stats[i].lo {
				stats[i].lo = stats[i-1].lo
			}
			if stats[i-1].hi > stats[i].hi {
				stats[i].hi = stats[i-1].hi
			}
			stats[i].n += stats[i-1].n
		}
	}
	for i, st := range stats {
		if st.n < cfg.MinSupport || st.hi-st.lo > cfg.MaxDepWidth {
			continue
		}
		lo, hi := bandBounds(i, cfg.Bands)
		if cfg.Cumulative {
			lo = 0
		}
		set.MustAdd(&Rule{
			Kind:      KindDD,
			Dependent: j,
			Determinants: []Constraint{
				{Attr: x, Kind: Interval, Min: lo, Max: hi},
			},
			DepMin: st.lo,
			DepMax: st.hi,
		})
	}
}

// mineDD2 emits two-determinant banded rules X1X2 → A_j (the combined
// lattice rules of Figure 2): for every pair of coarse bands on A_x1 and
// A_x2, the observed dependent interval, if supported and tight enough.
// Combining determinants tightens dependent intervals and multiplies the
// rule count — the multiplicity that motivates the CDD-index.
func mineDD2(set *Set, samples []*tuple.Record, pairs [][2]int, x1, x2, j int, cfg DetectConfig) {
	bands := cfg.TwoDetBands
	n := len(bands)
	stats := make([]depStats, n*n)
	for i := range stats {
		stats[i] = newDepStats()
	}
	for _, p := range pairs {
		a, b := samples[p[0]], samples[p[1]]
		b1 := band(tokens.JaccardDistance(a.Tokens(x1), b.Tokens(x1)), bands)
		if b1 < 0 {
			continue
		}
		b2 := band(tokens.JaccardDistance(a.Tokens(x2), b.Tokens(x2)), bands)
		if b2 < 0 {
			continue
		}
		stats[b1*n+b2].add(tokens.JaccardDistance(a.Tokens(j), b.Tokens(j)))
	}
	for b1 := 0; b1 < n; b1++ {
		for b2 := 0; b2 < n; b2++ {
			st := stats[b1*n+b2]
			if st.n < cfg.MinSupport || st.hi-st.lo > cfg.MaxDepWidth {
				continue
			}
			lo1, hi1 := bandBounds(b1, bands)
			lo2, hi2 := bandBounds(b2, bands)
			set.MustAdd(&Rule{
				Kind:      KindDD,
				Dependent: j,
				Determinants: []Constraint{
					{Attr: x1, Kind: Interval, Min: lo1, Max: hi1},
					{Attr: x2, Kind: Interval, Min: lo2, Max: hi2},
				},
				DepMin: st.lo,
				DepMax: st.hi,
			})
		}
	}
}

// mineCDD conditions the A_x → A_j bands on frequent constants of A_c,
// emitting rules (A_c, A_x → A_j, {v, [lo,hi], depI}) — the exact form of
// Example 2 / Definition 3.
func mineCDD(set *Set, repo *repository.Repository, samples []*tuple.Record, pairs [][2]int, c, x, j int, cfg DetectConfig) {
	constants := frequentConstants(repo.Domain(c), cfg.MaxConstants)
	if len(constants) == 0 {
		return
	}
	type key struct {
		constant int
		band     int
	}
	stats := make(map[key]*depStats)
	for _, p := range pairs {
		a, b := samples[p[0]], samples[p[1]]
		if a.Value(c) != b.Value(c) {
			continue
		}
		ci := indexOf(constants, a.Value(c))
		if ci < 0 {
			continue
		}
		bx := band(tokens.JaccardDistance(a.Tokens(x), b.Tokens(x)), cfg.Bands)
		if bx < 0 {
			continue
		}
		k := key{ci, bx}
		st, ok := stats[k]
		if !ok {
			v := newDepStats()
			st = &v
			stats[k] = st
		}
		st.add(tokens.JaccardDistance(a.Tokens(j), b.Tokens(j)))
	}
	// Deterministic emission order.
	keys := make([]key, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].constant != keys[b].constant {
			return keys[a].constant < keys[b].constant
		}
		return keys[a].band < keys[b].band
	})
	for _, k := range keys {
		st := stats[k]
		if st.n < cfg.MinSupport || st.hi-st.lo > cfg.MaxDepWidth {
			continue
		}
		lo, hi := bandBounds(k.band, cfg.Bands)
		text := constants[k.constant]
		set.MustAdd(&Rule{
			Kind:      KindCDD,
			Dependent: j,
			Determinants: []Constraint{
				{Attr: c, Kind: Const, Value: text, Toks: tokens.Tokenize(text)},
				{Attr: x, Kind: Interval, Min: lo, Max: hi},
			},
			DepMin: st.lo,
			DepMax: st.hi,
		})
	}
}

// mineEditing emits editing rules: a constant determinant value that pins
// the dependent value to (near-)equality across its carriers.
func mineEditing(set *Set, repo *repository.Repository, samples []*tuple.Record, x, j int, cfg DetectConfig) {
	constants := frequentConstants(repo.Domain(x), cfg.MaxConstants)
	for _, v := range constants {
		// Gather dependent values among carriers of v.
		var depToks []tokens.Set
		for _, s := range samples {
			if s.Value(x) == v {
				depToks = append(depToks, s.Tokens(j))
			}
		}
		if len(depToks) < 2 {
			continue
		}
		// Editing rules demand (near-)agreement of the dependent values.
		agree := true
		for i := 1; i < len(depToks) && agree; i++ {
			if tokens.JaccardDistance(depToks[0], depToks[i]) > cfg.EditingMaxDep {
				agree = false
			}
		}
		if !agree {
			continue
		}
		set.MustAdd(&Rule{
			Kind:      KindEditing,
			Dependent: j,
			Determinants: []Constraint{
				{Attr: x, Kind: Const, Value: v, Toks: tokens.Tokenize(v)},
			},
			DepMin: 0,
			DepMax: cfg.EditingMaxDep,
		})
	}
}

// frequentConstants returns up to max domain values with frequency >= 2,
// most frequent first (ties by text).
func frequentConstants(dom *repository.Domain, max int) []string {
	type fv struct {
		text string
		freq int
	}
	var all []fv
	for i := 0; i < dom.Len(); i++ {
		v := dom.Value(i)
		if v.Freq >= 2 {
			all = append(all, fv{v.Text, v.Freq})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].freq != all[b].freq {
			return all[a].freq > all[b].freq
		}
		return all[a].text < all[b].text
	})
	if len(all) > max {
		all = all[:max]
	}
	out := make([]string, len(all))
	for i, v := range all {
		out[i] = v.text
	}
	return out
}

func indexOf(list []string, v string) int {
	for i, s := range list {
		if s == v {
			return i
		}
	}
	return -1
}
