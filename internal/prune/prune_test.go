package prune

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"terids/internal/agg"
	"terids/internal/pivot"
	"terids/internal/tokens"
	"terids/internal/tuple"
)

var schema = tuple.MustSchema("A", "B")

// sel2 builds a fixed two-attribute pivot selection for tests.
func sel2() *pivot.Selection {
	return &pivot.Selection{PerAttr: []pivot.AttrPivots{
		{Attr: 0, Texts: []string{"p q"}, Toks: []tokens.Set{tokens.New("p", "q")}},
		{Attr: 1, Texts: []string{"m n"}, Toks: []tokens.Set{tokens.New("m", "n")}},
	}}
}

func completeProfile(t *testing.T, rid, a, b string, keywords tokens.Set) *Profile {
	t.Helper()
	r := tuple.MustRecord(schema, rid, 0, 0, []string{a, b})
	return BuildProfile(tuple.FromComplete(r), sel2(), keywords)
}

// imputedProfile builds a profile with a candidate distribution on
// attribute 1.
func imputedProfile(t *testing.T, rid, a string, cands []tuple.Candidate, keywords tokens.Set) *Profile {
	t.Helper()
	r := tuple.MustRecord(schema, rid, 0, 0, []string{a, "-"})
	im := &tuple.Imputed{R: r, Dists: []tuple.AttrDist{
		tuple.Point(a, tokens.Tokenize(a)),
		{Cands: cands},
	}}
	return BuildProfile(im, sel2(), keywords)
}

func TestBuildProfileComplete(t *testing.T) {
	kw := tokens.New("diabetes")
	p := completeProfile(t, "r1", "p q", "diabetes care", kw)
	// Attribute 0 equals the pivot: distance interval [0,0], expectation 0.
	if p.Dist[0][0].Lo != 0 || p.Dist[0][0].Hi != 0 || p.Exp[0][0] != 0 {
		t.Fatalf("attr 0 pivot distances wrong: %+v exp %v", p.Dist[0][0], p.Exp[0][0])
	}
	if p.Size[0].Lo != 2 || p.Size[0].Hi != 2 {
		t.Fatalf("attr 0 size interval wrong: %+v", p.Size[0])
	}
	if !p.MayKW || !p.KW.Get(0) {
		t.Fatal("keyword flags wrong")
	}
	if len(p.Instances) != 1 || !p.Instances[0].HasKeyword {
		t.Fatal("instances wrong")
	}
	lo, hi := p.MainBox()
	if lo[0] != 0 || hi[0] != 0 {
		t.Fatalf("MainBox wrong: %v %v", lo, hi)
	}
}

func TestBuildProfileImputed(t *testing.T) {
	kw := tokens.New("flu")
	p := imputedProfile(t, "r1", "p q", []tuple.Candidate{
		{Text: "m n", Toks: tokens.New("m", "n"), P: 0.5},        // dist to piv 0
		{Text: "x y z", Toks: tokens.New("x", "y", "z"), P: 0.5}, // dist 1
	}, kw)
	iv := p.Dist[1][0]
	if iv.Lo != 0 || iv.Hi != 1 {
		t.Fatalf("imputed distance interval = %+v, want [0,1]", iv)
	}
	if math.Abs(p.Exp[1][0]-0.5) > 1e-12 {
		t.Fatalf("expectation = %v, want 0.5", p.Exp[1][0])
	}
	if p.Size[1].Lo != 2 || p.Size[1].Hi != 3 {
		t.Fatalf("size interval = %+v", p.Size[1])
	}
	if p.MayKW {
		t.Fatal("no flu keyword anywhere")
	}
	if len(p.Instances) != 2 {
		t.Fatalf("instances = %d, want 2", len(p.Instances))
	}
}

func TestTopicPrune(t *testing.T) {
	kw := tokens.New("diabetes")
	with := completeProfile(t, "a", "diabetes", "x", kw)
	without := completeProfile(t, "b", "flu", "x", kw)
	without2 := completeProfile(t, "c", "cold", "y", kw)
	if TopicPrune(with, without) {
		t.Fatal("pair with one keyword side must survive")
	}
	if !TopicPrune(without, without2) {
		t.Fatal("pair with no keywords must be pruned")
	}
}

func TestSimUpperBoundExample5(t *testing.T) {
	// Reconstruct Example 5's size-driven bound on a 3-attribute schema.
	s3 := tuple.MustSchema("A", "B", "C")
	sel := &pivot.Selection{PerAttr: []pivot.AttrPivots{
		{Attr: 0, Texts: []string{"zz"}, Toks: []tokens.Set{tokens.New("zz")}},
		{Attr: 1, Texts: []string{"zz"}, Toks: []tokens.Set{tokens.New("zz")}},
		{Attr: 2, Texts: []string{"zz"}, Toks: []tokens.Set{tokens.New("zz")}},
	}}
	mkToks := func(n int, prefix string) tokens.Set {
		var ts []string
		for i := 0; i < n; i++ {
			ts = append(ts, fmt.Sprintf("%s%d", prefix, i))
		}
		return tokens.New(ts...)
	}
	mk := func(rid string, na, nb int, ncLo, ncHi int, prefix string) *Profile {
		r := tuple.MustRecord(s3, rid, 0, 0, []string{"x", "y", "-"})
		im := &tuple.Imputed{R: r, Dists: []tuple.AttrDist{
			tuple.Point("a", mkToks(na, prefix+"a")),
			tuple.Point("b", mkToks(nb, prefix+"b")),
			{Cands: []tuple.Candidate{
				{Toks: mkToks(ncLo, prefix+"c"), P: 0.5},
				{Toks: mkToks(ncHi, prefix+"c"), P: 0.5},
			}},
		}}
		return BuildProfile(im, sel, nil)
	}
	r1 := mk("r1", 10, 7, 5, 7, "u")
	r2 := mk("r2", 8, 10, 10, 12, "v")
	// Example 5: 8/10 + 7/10 + 7/10 = 2.2. Token sets are disjoint, so the
	// pivot bound cannot beat the size bound here (pivot distances all 1).
	if got := SimUpperBound(r1.Bounds, r2.Bounds); math.Abs(got-2.2) > 1e-9 {
		t.Fatalf("SimUpperBound = %v, want 2.2", got)
	}
	if !SimPrune(r1.Bounds, r2.Bounds, 2.2) {
		t.Fatal("pair must prune at gamma = 2.2")
	}
	if SimPrune(r1.Bounds, r2.Bounds, 2.1) {
		t.Fatal("pair must survive at gamma = 2.1")
	}
}

func randomImputed(r *rand.Rand, rid string, stream int) *tuple.Imputed {
	vocab := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	randToks := func() tokens.Set {
		n := 1 + r.Intn(4)
		var ts []string
		for i := 0; i < n; i++ {
			ts = append(ts, vocab[r.Intn(len(vocab))])
		}
		return tokens.New(ts...)
	}
	rec := tuple.MustRecord(schema, rid, stream, 0, []string{"x", "-"})
	nc := 1 + r.Intn(3)
	dist := tuple.AttrDist{}
	for i := 0; i < nc; i++ {
		toks := randToks()
		dist.Cands = append(dist.Cands, tuple.Candidate{Text: toks.String(), Toks: toks, P: 1})
	}
	dist.Normalize()
	return &tuple.Imputed{R: rec, Dists: []tuple.AttrDist{
		tuple.Point("first", randToks()),
		dist,
	}}
}

// TestBoundsSafety is the central safety property: for random imputed
// pairs, (1) ub_sim dominates every instance-pair similarity, (2) UB_Pr
// dominates the exact probability, and (3) any pruned pair has exact
// probability <= alpha.
func TestBoundsSafety(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	kw := tokens.New("a", "e")
	sel := sel2()
	for trial := 0; trial < 3000; trial++ {
		pa := BuildProfile(randomImputed(r, "ra", 0), sel, kw)
		pb := BuildProfile(randomImputed(r, "rb", 1), sel, kw)
		gamma := r.Float64() * 2
		alpha := r.Float64()

		ub := SimUpperBound(pa.Bounds, pb.Bounds)
		maxSim := 0.0
		for _, ia := range pa.Instances {
			for _, ib := range pb.Instances {
				if s := ia.Sim(ib); s > maxSim {
					maxSim = s
				}
			}
		}
		if maxSim > ub+1e-9 {
			t.Fatalf("trial %d: ub_sim %v < actual max sim %v", trial, ub, maxSim)
		}

		exact := ExactProbability(pa, pb, gamma)
		if pub := ProbUpperBound(pa, pb, gamma); exact > pub+1e-9 {
			t.Fatalf("trial %d: UB_Pr %v < exact %v (gamma=%v)", trial, pub, exact, gamma)
		}

		if TopicPrune(pa, pb) && exact > 0 {
			t.Fatalf("trial %d: topic-pruned pair has probability %v", trial, exact)
		}
		if SimPrune(pa.Bounds, pb.Bounds, gamma) && exact > 0 {
			t.Fatalf("trial %d: sim-pruned pair has probability %v", trial, exact)
		}
		if ProbPrune(pa, pb, gamma, alpha) && exact > alpha {
			t.Fatalf("trial %d: prob-pruned pair has probability %v > alpha %v", trial, exact, alpha)
		}

		// Refine agrees with the exact decision.
		res := Refine(pa, pb, gamma, alpha)
		if res.Match != (exact > alpha+1e-12) && math.Abs(exact-alpha) > 1e-9 {
			t.Fatalf("trial %d: Refine match %v, exact %v vs alpha %v", trial, res.Match, exact, alpha)
		}
	}
}

func TestRefineEarlyExits(t *testing.T) {
	kw := tokens.New("k")
	sel := sel2()
	// Identical single-instance tuples with a keyword: probability 1.
	r1 := tuple.MustRecord(schema, "r1", 0, 0, []string{"k x", "y"})
	r2 := tuple.MustRecord(schema, "r2", 1, 0, []string{"k x", "y"})
	pa := BuildProfile(tuple.FromComplete(r1), sel, kw)
	pb := BuildProfile(tuple.FromComplete(r2), sel, kw)
	res := Refine(pa, pb, 1.5, 0.5)
	if !res.Match || res.Prob <= 0.5 {
		t.Fatalf("identical tuples must match: %+v", res)
	}
	// Disjoint tuples: first pair check establishes the Theorem 4.4 bound
	// sum + (1-processed) = 0 <= alpha and prunes immediately.
	r3 := tuple.MustRecord(schema, "r3", 1, 0, []string{"zz", "ww"})
	pc := BuildProfile(tuple.FromComplete(r3), sel, kw)
	res = Refine(pa, pc, 1.5, 0.3)
	if res.Match {
		t.Fatal("disjoint tuples must not match")
	}
	if !res.PrunedEarly {
		t.Fatalf("single-instance non-match must trigger Theorem 4.4: %+v", res)
	}
	if res.PairsChecked != 1 {
		t.Fatalf("PairsChecked = %d, want 1", res.PairsChecked)
	}
}

func TestRefineInstancePairSavings(t *testing.T) {
	// Many-instance tuples whose first pairs already push the sum past
	// alpha: early accept must not check all pairs.
	kw := tokens.New("k")
	cands := []tuple.Candidate{}
	for i := 0; i < 6; i++ {
		toks := tokens.New("k", "shared")
		cands = append(cands, tuple.Candidate{Text: "v", Toks: toks, P: 1.0 / 6.0})
	}
	pa := imputedProfile(t, "a", "k base", cands, kw)
	pb := imputedProfile(t, "b", "k base", cands, kw)
	res := Refine(pa, pb, 1.0, 0.1)
	if !res.Match {
		t.Fatal("must match")
	}
	if res.PairsChecked >= 36 {
		t.Fatalf("early accept must save work: checked %d of 36", res.PairsChecked)
	}
}

func TestProbUpperBoundExample7(t *testing.T) {
	// Example 7: d=3, gamma=2.8, E(X)=0.7, E(Y)=1.2, lb_X=0.3, ub_X=1.1,
	// lb_Y=1.1, ub_Y=1.3 -> UB = 1 - (1 - 0.2/0.5)^2 * 0.5/1.0 = 0.82.
	// Attribute expectations: r1 = {0.1, 0.1, (0.1+0.5+0.9)/3 = 0.5},
	// r2 = {0.2, 0.2, (0.7+0.9)/2 = 0.8}.
	pa := manualProfile([3]float64{0.1, 0.1, 0.5}, [3][2]float64{{0.1, 0.1}, {0.1, 0.1}, {0.1, 0.9}})
	pb := manualProfile([3]float64{0.2, 0.2, 0.8}, [3][2]float64{{0.2, 0.2}, {0.2, 0.2}, {0.7, 0.9}})
	got := ProbUpperBound(pa, pb, 2.8)
	if math.Abs(got-0.82) > 1e-9 {
		t.Fatalf("Example 7 UB = %v, want 0.82", got)
	}
	// The symmetric orientation must give the same bound.
	if sym := ProbUpperBound(pb, pa, 2.8); math.Abs(sym-got) > 1e-12 {
		t.Fatalf("UB not symmetric: %v vs %v", sym, got)
	}
	// Outside the lemma's conditions the bound degrades to 1: overlapping
	// ranges (neither lb_X >= ub_Y nor lb_Y >= ub_X).
	pc := manualProfile([3]float64{0.5, 0.5, 0.5}, [3][2]float64{{0.1, 0.9}, {0.1, 0.9}, {0.1, 0.9}})
	if ub := ProbUpperBound(pa, pc, 2.8); ub != 1 {
		t.Fatalf("overlapping ranges must give trivial bound, got %v", ub)
	}
}

// manualProfile hand-builds a 3-attribute profile with the given main-pivot
// expectations and distance intervals (no instances; only aggregate-driven
// bounds are exercised).
func manualProfile(exps [3]float64, dists [3][2]float64) *Profile {
	p := &Profile{
		Bounds: Bounds{
			Dist: make([][]agg.Interval, 3),
			Size: make([]agg.IntInterval, 3),
		},
		Exp: make([][]float64, 3),
	}
	for x := 0; x < 3; x++ {
		p.Dist[x] = []agg.Interval{{Lo: dists[x][0], Hi: dists[x][1]}}
		p.Exp[x] = []float64{exps[x]}
		p.Size[x] = agg.IntInterval{Lo: 1, Hi: 1}
	}
	return p
}
