// Package prune implements the four pruning strategies of Section 4: topic
// keyword pruning (Theorem 4.1), similarity upper bound pruning via token
// set sizes and via pivots (Theorem 4.2, Lemmas 4.1/4.2), probability upper
// bound pruning via the Paley–Zygmund inequality (Theorem 4.3, Lemma 4.3),
// and instance-pair-level pruning during refinement (Theorem 4.4).
package prune

import (
	"terids/internal/agg"
	"terids/internal/bitvec"
	"terids/internal/pivot"
	"terids/internal/tokens"
	"terids/internal/tuple"
)

// Bounds summarizes what the pruning rules need about one side of a pair:
// per-attribute distance intervals to every pivot and token-set size
// intervals. Both imputed-tuple profiles and ER-grid cell aggregates
// provide Bounds.
type Bounds struct {
	// Dist[x][a] bounds dist(value, piv_a[A_x]) over the summarized values
	// (a = 0 is the main pivot).
	Dist [][]agg.Interval
	// Size[x] bounds |T(value)|.
	Size []agg.IntInterval
}

// Profile precomputes, for one imputed tuple, everything the pruning rules
// and the ER-grid need: pivot distance intervals and expectations, size
// intervals, the keyword bitvector, and the cached instance enumeration.
type Profile struct {
	Im *tuple.Imputed
	Bounds
	// Exp[x][a] is E(dist(r^p[A_x], piv_a[A_x])) per the aggregate list of
	// Section 5.2.
	Exp [][]float64
	// KW has bit i set iff some candidate value contains query keyword i.
	KW bitvec.Vector
	// MayKW reports whether any instance contains any query keyword
	// (Theorem 4.1's condition).
	MayKW bool
	// Instances caches the instance enumeration of Definition 4, keyword
	// flags included.
	Instances []tuple.Instance
}

// BuildProfile computes the profile of an imputed tuple under the given
// pivot selection and query keywords. keywords must be sorted (a
// tokens.Set); bit i of KW corresponds to keywords[i].
func BuildProfile(im *tuple.Imputed, sel *pivot.Selection, keywords tokens.Set) *Profile {
	d := len(im.Dists)
	p := &Profile{
		Im: im,
		Bounds: Bounds{
			Dist: make([][]agg.Interval, d),
			Size: make([]agg.IntInterval, d),
		},
		Exp: make([][]float64, d),
		KW:  bitvec.New(len(keywords)),
	}
	for x := 0; x < d; x++ {
		nPiv := sel.NumPivots(x)
		p.Dist[x] = make([]agg.Interval, nPiv)
		p.Exp[x] = make([]float64, nPiv)
		for a := 0; a < nPiv; a++ {
			p.Dist[x][a] = agg.EmptyInterval()
		}
		p.Size[x] = agg.EmptyIntInterval()
		for _, c := range im.Dists[x].Cands {
			p.Size[x].Extend(c.Toks.Len())
			for a := 0; a < nPiv; a++ {
				dist := tokens.JaccardDistance(c.Toks, sel.PerAttr[x].Toks[a])
				p.Dist[x][a].Extend(dist)
				p.Exp[x][a] += dist * c.P
			}
			for i, kw := range keywords {
				if c.Toks.Contains(kw) {
					p.KW.Set(i)
				}
			}
		}
	}
	p.MayKW = p.KW.Any()
	p.Instances = im.Instances(keywords)
	return p
}

// MainBox returns the per-attribute main-pivot distance intervals as two
// coordinate slices (lo, hi) — the box the tuple occupies in the converted
// space, used by the ER-grid and DR-index queries.
func (p *Profile) MainBox() (lo, hi []float64) {
	d := len(p.Dist)
	lo = make([]float64, d)
	hi = make([]float64, d)
	for x := 0; x < d; x++ {
		iv := p.Dist[x][0]
		if iv.IsEmpty() {
			lo[x], hi[x] = 0, 1
			continue
		}
		lo[x], hi[x] = iv.Lo, iv.Hi
	}
	return lo, hi
}

// Summary converts the profile to the aggregate form stored in grid cells
// and index nodes, padded to nPiv pivot slots.
func (p *Profile) Summary(nPiv int) *agg.Summary {
	d := len(p.Dist)
	s := agg.NewSummary(d, nPiv, p.KW.Len())
	s.KW.Or(p.KW)
	for x := 0; x < d; x++ {
		for a := 0; a < nPiv && a < len(p.Dist[x]); a++ {
			s.Dist[x][a].ExtendInterval(p.Dist[x][a])
		}
		s.Size[x].ExtendInterval(p.Size[x])
	}
	return s
}
