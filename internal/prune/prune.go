package prune

import (
	"terids/internal/tokens"
)

// TopicPrune implements Theorem 4.1: a pair is safely pruned when no
// possible instance of either tuple contains a query keyword.
func TopicPrune(a, b *Profile) bool {
	return !a.MayKW && !b.MayKW
}

// attrSimUB returns the per-attribute similarity upper bound, the tighter
// of Lemma 4.1 (token-set sizes) and Lemma 4.2 (pivot triangle inequality
// over every shared pivot).
func attrSimUB(a, b Bounds, x int) float64 {
	ub := 1.0
	// Lemma 4.1 via size intervals.
	sa, sb := a.Size[x], b.Size[x]
	if !sa.IsEmpty() && !sb.IsEmpty() {
		if s := tokens.SimUpperBoundBySizeInterval(sa.Lo, sa.Hi, sb.Lo, sb.Hi); s < ub {
			ub = s
		}
	}
	// Lemma 4.2 via each pivot both sides carry: each yields a lower bound
	// on the attribute distance; the largest lower bound gives the
	// tightest similarity upper bound.
	nPiv := len(a.Dist[x])
	if n := len(b.Dist[x]); n < nPiv {
		nPiv = n
	}
	for p := 0; p < nPiv; p++ {
		da, db := a.Dist[x][p], b.Dist[x][p]
		if da.IsEmpty() || db.IsEmpty() {
			continue
		}
		minDist := tokens.MinDistByPivot(da.Lo, da.Hi, db.Lo, db.Hi)
		if s := 1 - minDist; s < ub {
			ub = s
		}
	}
	if ub < 0 {
		ub = 0
	}
	return ub
}

// SimUpperBound returns ub_sim(a, b) per Theorem 4.2: the sum over
// attributes of per-attribute upper bounds.
func SimUpperBound(a, b Bounds) float64 {
	total := 0.0
	for x := range a.Dist {
		total += attrSimUB(a, b, x)
	}
	return total
}

// SimPrune implements Theorem 4.2: prune when ub_sim <= γ.
func SimPrune(a, b Bounds, gamma float64) bool {
	return SimUpperBound(a, b) <= gamma
}

// ProbUpperBound computes UB_Pr per Lemma 4.3 (Paley–Zygmund) over the main
// pivot: X = dist(a, piv), Y = dist(b, piv) summed across attributes.
// d is the dimensionality and gamma the similarity threshold.
func ProbUpperBound(a, b *Profile, gamma float64) float64 {
	d := len(a.Dist)
	var eX, eY, lbX, ubX, lbY, ubY float64
	for x := 0; x < d; x++ {
		eX += a.Exp[x][0]
		eY += b.Exp[x][0]
		ia, ib := a.Dist[x][0], b.Dist[x][0]
		if ia.IsEmpty() || ib.IsEmpty() {
			return 1 // nothing known; trivial bound
		}
		lbX += ia.Lo
		ubX += ia.Hi
		lbY += ib.Lo
		ubY += ib.Hi
	}
	dg := float64(d) - gamma
	switch {
	case lbX >= ubY && eX-eY > 0 && dg >= 0 && dg <= eX-eY:
		theta := dg / (eX - eY)
		denom := ubX - lbY
		if denom <= 0 {
			return 1
		}
		return 1 - (1-theta)*(1-theta)*(eX-eY)/denom
	case lbY >= ubX && eY-eX > 0 && dg >= 0 && dg <= eY-eX:
		theta := dg / (eY - eX)
		denom := ubY - lbX
		if denom <= 0 {
			return 1
		}
		return 1 - (1-theta)*(1-theta)*(eY-eX)/denom
	default:
		return 1
	}
}

// ProbPrune implements Theorem 4.3: prune when UB_Pr <= α.
func ProbPrune(a, b *Profile, gamma, alpha float64) bool {
	return ProbUpperBound(a, b, gamma) <= alpha
}

// RefineResult reports the outcome of the instance-pair refinement.
type RefineResult struct {
	// Prob is the exact TER-iDS probability (Equation 2) when fully
	// computed; a partial sum when pruned or accepted early.
	Prob float64
	// Match reports whether Prob > alpha was established.
	Match bool
	// PrunedEarly reports whether Theorem 4.4 stopped the enumeration
	// before all instance pairs were checked.
	PrunedEarly bool
	// PairsChecked counts instance pairs actually evaluated.
	PairsChecked int
}

// Refine computes Pr_TER-iDS(a, b) (Equation 2) with the
// instance-pair-level pruning of Theorem 4.4: after each instance pair, the
// unprocessed probability mass is added optimistically; if even that bound
// cannot exceed alpha, the pair is pruned without checking the rest.
// Symmetrically, once the accumulated exact probability exceeds alpha the
// pair is accepted early.
func Refine(a, b *Profile, gamma, alpha float64) RefineResult {
	var res RefineResult
	sum := 0.0       // exact probability over checked pairs
	processed := 0.0 // probability mass of checked pairs
	for _, ia := range a.Instances {
		for _, ib := range b.Instances {
			mass := ia.P * ib.P
			if (ia.HasKeyword || ib.HasKeyword) && ia.Sim(ib) > gamma {
				sum += mass
			}
			processed += mass
			res.PairsChecked++
			if sum > alpha {
				res.Prob = sum
				res.Match = true
				return res
			}
			// Theorem 4.4: optimistic bound over the remainder.
			if sum+(1-processed) <= alpha {
				res.Prob = sum
				res.PrunedEarly = true
				return res
			}
		}
	}
	res.Prob = sum
	res.Match = sum > alpha
	return res
}

// ExactProbability computes Equation 2 with no early exits; the reference
// for tests and the straightforward baseline. The topic indicator is
// checked first, skipping similarity work for non-topic instance pairs —
// an optimization only a topic-aware method can apply.
func ExactProbability(a, b *Profile, gamma float64) float64 {
	sum := 0.0
	for _, ia := range a.Instances {
		for _, ib := range b.Instances {
			if (ia.HasKeyword || ib.HasKeyword) && ia.Sim(ib) > gamma {
				sum += ia.P * ib.P
			}
		}
	}
	return sum
}

// ExactProbabilityFullER computes the same value as ExactProbability, but
// the way a non-topic-aware method must (the Section 6.1 baselines resolve
// ALL entity pairs and filter by topic afterwards): every instance pair's
// similarity is evaluated, whether or not a topic keyword is present.
func ExactProbabilityFullER(a, b *Profile, gamma float64) float64 {
	sum := 0.0
	for _, ia := range a.Instances {
		for _, ib := range b.Instances {
			if ia.Sim(ib) > gamma && (ia.HasKeyword || ib.HasKeyword) {
				sum += ia.P * ib.P
			}
		}
	}
	return sum
}
