// Package testutil holds dependency-free test harness helpers shared by the
// engine, WAL, and serve test suites.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// VerifyNoLeaks runs a package's tests and then fails the run if any
// non-runtime goroutines are still alive: a TestMain body of
//
//	func TestMain(m *testing.M) { testutil.VerifyNoLeaks(m) }
//
// gives the whole package a goroutine-leak gate for free. A pipeline stage
// that outlives Engine.Close, a WAL group-commit loop that survives
// Log.Close, or a follower tail that keeps polling after Stop all show up
// here as full stacks on stderr and a non-zero exit.
//
// Goroutines are given a grace window to drain — Close contracts guarantee
// the work is done, not that the worker has been rescheduled to its final
// return — so the check polls runtime.Stack until only known-benign stacks
// remain or the deadline passes. It never calls os.Exit(0) early on a failed
// test run: test failures keep their exit code.
func VerifyNoLeaks(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if stacks := leakedGoroutines(5 * time.Second); len(stacks) > 0 {
			fmt.Fprintf(os.Stderr, "goroutine leak: %d goroutine(s) still alive after all tests passed:\n\n%s\n",
				len(stacks), strings.Join(stacks, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// leakedGoroutines polls until every live goroutine is benign or the grace
// window expires, returning the offending stacks (nil when clean).
func leakedGoroutines(grace time.Duration) []string {
	deadline := time.Now().Add(grace)
	for {
		stacks := interesting(allStacks())
		if len(stacks) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return stacks
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// allStacks snapshots every goroutine's stack, growing the buffer until the
// dump fits.
func allStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	return strings.Split(string(buf), "\n\n")
}

// interesting filters the snapshot down to goroutines that indicate a leak.
// The runtime's own helpers, the testing framework, signal handling, and
// this checker's goroutine are all expected to be alive after m.Run.
func interesting(stacks []string) []string {
	var out []string
	for _, s := range stacks {
		if s == "" || benign(s) {
			continue
		}
		out = append(out, s)
	}
	return out
}

func benign(stack string) bool {
	for _, marker := range []string{
		"testing.(*M).Run",          // the main test goroutine (runs this checker)
		"testing.(*T).Run",          // parked subtest parents
		"testing.runTests",          //
		"testing.tRunner.func",      // tRunner cleanup closures parked in runtime
		"runtime.goexit",            // fully exited, not yet reaped
		"created by runtime",        // runtime-internal helpers (GC, finalizers)
		"runtime.gc",                //
		"runtime.bgsweep",           //
		"runtime.bgscavenge",        //
		"runtime.forcegchelper",     //
		"runtime/trace",             //
		"signal.Notify",             // os/signal delivery goroutine
		"os/signal.signal_recv",     //
		"os/signal.loop",            //
		"runtime.ensureSigM",        //
		"testing.(*F).Fuzz",         // fuzz workers
		"runtime/pprof",             // profiler writers during -cpuprofile runs
		"testing.(*testContext)",    //
		"runtime.ReadTrace",         //
		"runtime.traceStartReadCPU", //
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	// The goroutine running leakedGoroutines itself shows up in its own dump.
	if strings.Contains(stack, "testutil.allStacks") || strings.Contains(stack, "testutil.leakedGoroutines") {
		return true
	}
	return false
}
