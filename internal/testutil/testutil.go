// Package testutil holds helpers shared by the crash-injection test suites
// (engine durability, serve restart). It is imported only from _test files.
package testutil

import (
	"os"
	"path/filepath"
	"testing"
)

// CopyTree clones a durability directory — the SIGKILL simulation shared by
// the crash-recovery tests: the copy is exactly the on-disk state an abrupt
// kill would leave behind (every acknowledged write is in a file; nothing
// was drained, closed, or checkpointed on the way out).
func CopyTree(t testing.TB, src, dst string) {
	t.Helper()
	des, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		s, d := filepath.Join(src, de.Name()), filepath.Join(dst, de.Name())
		if de.IsDir() {
			if err := os.MkdirAll(d, 0o755); err != nil {
				t.Fatal(err)
			}
			CopyTree(t, s, d)
			continue
		}
		b, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(d, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
