package testutil

import (
	"strings"
	"testing"
	"time"
)

// leakMarker blocks until released; its name is what the assertions grep the
// stack dumps for.
func leakMarker(release <-chan struct{}) {
	<-release
}

func hasMarker(stacks []string) bool {
	for _, s := range stacks {
		if strings.Contains(s, "leakMarker") {
			return true
		}
	}
	return false
}

// TestLeakDetection pins both directions: a blocked goroutine is reported
// with its stack, and releasing it clears the report within the grace
// window.
func TestLeakDetection(t *testing.T) {
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		leakMarker(release)
	}()

	if stacks := leakedGoroutines(50 * time.Millisecond); !hasMarker(stacks) {
		t.Fatalf("blocked goroutine not reported; got %d stacks", len(stacks))
	}

	close(release)
	<-done
	deadline := time.Now().Add(2 * time.Second)
	for hasMarker(leakedGoroutines(10 * time.Millisecond)) {
		if time.Now().After(deadline) {
			t.Fatal("released goroutine still reported as leaked")
		}
	}
}

// TestBenignFilter spot-checks that the runtime's own goroutines — always
// alive — never count as leaks on an otherwise idle package.
func TestBenignFilter(t *testing.T) {
	for _, s := range interesting(allStacks()) {
		if strings.Contains(s, "created by runtime") || strings.Contains(s, "runtime.bgsweep") {
			t.Fatalf("runtime goroutine reported as a leak:\n%s", s)
		}
	}
}
