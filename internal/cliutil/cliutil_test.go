package cliutil

import (
	"strings"
	"testing"
	"time"
)

func valid() Params {
	return Params{Alpha: 0.5, Rho: 0.5, W: 200, Streams: 2, Shards: 4, Queue: 256, Scale: 1, Eta: 0.5, Xi: 0.3}
}

func TestValidateAccepts(t *testing.T) {
	for _, p := range []Params{
		valid(),
		{Alpha: 0, Rho: 1, W: 1, Streams: 2, Shards: 0, Queue: 1, Scale: 0.01, Eta: 1, Xi: 0},
		{Alpha: 0.999, Rho: 0.001, W: 1 << 20, Streams: 16, Shards: MaxShards, Queue: 1 << 16, Scale: 10, Eta: 0.5, Xi: 1},
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", p, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
		want string
	}{
		{"alpha high", func(p *Params) { p.Alpha = 1 }, "-alpha"},
		{"alpha negative", func(p *Params) { p.Alpha = -0.1 }, "-alpha"},
		{"rho zero", func(p *Params) { p.Rho = 0 }, "-rho"},
		{"rho high", func(p *Params) { p.Rho = 1.1 }, "-rho"},
		{"window", func(p *Params) { p.W = 0 }, "-w"},
		{"streams", func(p *Params) { p.Streams = 1 }, "-streams"},
		{"shards negative", func(p *Params) { p.Shards = -1 }, "-shards"},
		{"shards huge", func(p *Params) { p.Shards = MaxShards + 1 }, "-shards"},
		{"queue", func(p *Params) { p.Queue = 0 }, "-queue"},
		{"scale", func(p *Params) { p.Scale = 0 }, "-scale"},
		{"eta", func(p *Params) { p.Eta = 0 }, "-eta"},
		{"xi", func(p *Params) { p.Xi = 1.5 }, "-xi"},
		{"rate limit", func(p *Params) { p.RateLimit = -1 }, "-rate-limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := valid()
			tc.mut(&p)
			err := p.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want mention of %s", err, tc.want)
			}
		})
	}
}

func TestValidateJoinsAllViolations(t *testing.T) {
	err := Params{Alpha: 2, Rho: 0, W: 0, Streams: 0, Queue: 0, Scale: 0, Eta: 0, Xi: -1}.Validate()
	if err == nil {
		t.Fatal("all-bad params validated")
	}
	for _, flag := range []string{"-alpha", "-rho", "-w", "-streams", "-queue", "-scale", "-eta", "-xi"} {
		if !strings.Contains(err.Error(), flag) {
			t.Errorf("joined error misses %s: %v", flag, err)
		}
	}
}

// TestRebalanceAccepts covers every legal adaptive-rebalancing combination:
// disabled, the full monitor setup, auto-sharding alone, and auto-sharding
// with the monitor tuned explicitly.
func TestRebalanceAccepts(t *testing.T) {
	for _, r := range []Rebalance{
		{},
		{Threshold: 1, Interval: time.Second},
		{Threshold: 2.5, Interval: 100 * time.Millisecond},
		{AutoShards: true},
		{AutoShards: true, Threshold: 1.5, Interval: time.Second},
		{ShardsSet: true},
		{ShardsSet: true, Threshold: 1.5, Interval: time.Second},
	} {
		if err := r.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", r, err)
		}
	}
}

// TestRebalanceRejects is the flag-conflict matrix: sub-1 ratios, each half
// of the threshold/interval pair without the other, negative periods, and
// -auto-shards against an explicit -shards.
func TestRebalanceRejects(t *testing.T) {
	cases := []struct {
		name string
		r    Rebalance
		want string
	}{
		{"threshold below one", Rebalance{Threshold: 0.5, Interval: time.Second}, "-rebalance-threshold"},
		{"threshold negative", Rebalance{Threshold: -1, Interval: time.Second}, "-rebalance-threshold"},
		{"threshold without interval", Rebalance{Threshold: 2}, "requires -rebalance-interval"},
		{"interval without threshold", Rebalance{Interval: time.Second}, "requires -rebalance-threshold"},
		{"interval negative", Rebalance{Threshold: 2, Interval: -time.Second}, "-rebalance-interval"},
		{"auto-shards with explicit shards", Rebalance{AutoShards: true, ShardsSet: true}, "mutually exclusive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.r.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate(%+v) = %v, want mention of %q", tc.r, err, tc.want)
			}
		})
	}
}

// TestRebalanceJoinsAllViolations: a maximally misconfigured invocation
// reports every problem at once.
func TestRebalanceJoinsAllViolations(t *testing.T) {
	err := Rebalance{Threshold: 0.2, Interval: -time.Second, AutoShards: true, ShardsSet: true}.Validate()
	if err == nil {
		t.Fatal("all-bad rebalance flags validated")
	}
	for _, want := range []string{"-rebalance-threshold", "-rebalance-interval", "mutually exclusive"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error misses %q: %v", want, err)
		}
	}
}

// TestDurabilityAccepts covers every legal flag combination: durability off,
// WAL without the background checkpointer, the full WAL+checkpointer setup,
// and a plain -restore without a WAL.
func TestDurabilityAccepts(t *testing.T) {
	for _, d := range []Durability{
		{CheckpointKeep: 1},
		{WALDir: "state", CheckpointKeep: 1},
		{WALDir: "state", CheckpointInterval: 30 * time.Second, CheckpointKeep: 2},
		{Restore: "ckpt.bin", CheckpointKeep: 1},
	} {
		if err := d.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", d, err)
		}
	}
}

// TestDurabilityRejects covers the conflicting and required-together cases:
// -wal-dir/-restore are mutually exclusive (the WAL directory auto-recovers
// from its own checkpoints), and -checkpoint-interval requires -wal-dir.
func TestDurabilityRejects(t *testing.T) {
	cases := []struct {
		name string
		d    Durability
		want string
	}{
		{"wal-dir and restore together", Durability{
			WALDir: "state", Restore: "ckpt.bin", CheckpointKeep: 1,
		}, "mutually exclusive"},
		{"checkpoint interval without wal dir", Durability{
			CheckpointInterval: time.Minute, CheckpointKeep: 1,
		}, "-checkpoint-interval requires"},
		{"negative interval", Durability{
			WALDir: "state", CheckpointInterval: -time.Second, CheckpointKeep: 1,
		}, "-checkpoint-interval"},
		{"keep zero", Durability{WALDir: "state"}, "-checkpoint-keep"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.d.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate(%+v) = %v, want mention of %q", tc.d, err, tc.want)
			}
		})
	}
}

// TestDurabilityJoinsAllViolations: a maximally misconfigured invocation
// reports every problem at once.
func TestDurabilityJoinsAllViolations(t *testing.T) {
	err := Durability{WALDir: "state", Restore: "ckpt.bin", CheckpointInterval: -1}.Validate()
	if err == nil {
		t.Fatal("all-bad durability flags validated")
	}
	for _, want := range []string{"mutually exclusive", "-checkpoint-interval", "-checkpoint-keep"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error misses %q: %v", want, err)
		}
	}
}

// TestDurabilityDeltaFlags: -checkpoint-delta rides on the background
// checkpointer, so it needs a WAL directory and a non-negative count.
func TestDurabilityDeltaFlags(t *testing.T) {
	for _, d := range []Durability{
		{WALDir: "state", CheckpointKeep: 1, CheckpointDelta: 4},
		{WALDir: "state", CheckpointInterval: time.Minute, CheckpointKeep: 2, CheckpointDelta: 8},
		{CheckpointKeep: 1, CheckpointDelta: 0},
	} {
		if err := d.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", d, err)
		}
	}
	cases := []struct {
		name string
		d    Durability
		want string
	}{
		{"delta negative", Durability{WALDir: "state", CheckpointKeep: 1, CheckpointDelta: -1}, "-checkpoint-delta"},
		{"delta without wal dir", Durability{CheckpointKeep: 1, CheckpointDelta: 3}, "-checkpoint-delta requires"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.d.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate(%+v) = %v, want mention of %q", tc.d, err, tc.want)
			}
		})
	}
}

// TestReplayFlags is the regression test for the replay-ring startup panic:
// a non-positive -replay-buffer used to reach newResultRing and divide by
// zero on the first merged result. It must be rejected here, before any
// engine starts.
func TestReplayFlags(t *testing.T) {
	for _, r := range []Replay{
		{Buffer: 1},
		{Buffer: 4096, Depth: 1 << 20},
	} {
		if err := r.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", r, err)
		}
	}
	cases := []struct {
		name string
		r    Replay
		want string
	}{
		{"buffer zero", Replay{Buffer: 0}, "-replay-buffer"},
		{"buffer negative", Replay{Buffer: -8, Depth: 10}, "-replay-buffer"},
		{"depth negative", Replay{Buffer: 64, Depth: -1}, "-replay-depth"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.r.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate(%+v) = %v, want mention of %q", tc.r, err, tc.want)
			}
		})
	}
}
