// Package cliutil holds the flag validation shared by the terids command
// line tools, so the parameter ranges (and their error messages) stay
// identical across cmd/terids and cmd/terids-serve instead of drifting as
// per-command copies.
package cliutil

import (
	"errors"
	"fmt"
	"time"
)

// MaxShards bounds the -shards flag: beyond this the per-arrival broadcast
// fan-out dominates any parallelism win.
const MaxShards = 64

// Params are the command-line parameters common to the terids CLIs. Every
// field is validated; commands without a given flag pass that field's
// stated neutral value.
type Params struct {
	// Alpha is the probabilistic threshold α ∈ [0, 1).
	Alpha float64
	// Rho is the similarity ratio ρ ∈ (0, 1] (γ = ρ·d).
	Rho float64
	// W is the sliding window size, ≥ 1.
	W int
	// Streams is the number of incoming streams, ≥ 2.
	Streams int
	// Shards is the ER-grid shard count: 0 (auto-size) or [1, MaxShards].
	Shards int
	// Queue is the per-stage bounded queue depth, ≥ 1 (commands without a
	// -queue flag pass 1).
	Queue int
	// Scale is the dataset scale factor, > 0.
	Scale float64
	// Eta is the repository size ratio η ∈ (0, 1].
	Eta float64
	// Xi is the missing rate ξ ∈ [0, 1].
	Xi float64
	// RateLimit is the per-stream ingest rate limit in tuples/sec, ≥ 0
	// (0 disables; commands without a -rate-limit flag pass 0).
	RateLimit float64
}

// Validate checks every parameter range, joining all violations into one
// error so a misconfigured invocation reports everything at once.
func (p Params) Validate() error {
	var errs []error
	if p.Alpha < 0 || p.Alpha >= 1 {
		errs = append(errs, fmt.Errorf("-alpha %v outside [0, 1)", p.Alpha))
	}
	if p.Rho <= 0 || p.Rho > 1 {
		errs = append(errs, fmt.Errorf("-rho %v outside (0, 1]", p.Rho))
	}
	if p.W < 1 {
		errs = append(errs, fmt.Errorf("-w %d, need >= 1", p.W))
	}
	if p.Streams < 2 {
		errs = append(errs, fmt.Errorf("-streams %d, need >= 2", p.Streams))
	}
	if p.Shards < 0 || p.Shards > MaxShards {
		errs = append(errs, fmt.Errorf("-shards %d outside [0, %d] (0 = auto)", p.Shards, MaxShards))
	}
	if p.Queue < 1 {
		errs = append(errs, fmt.Errorf("-queue %d, need >= 1", p.Queue))
	}
	if p.Scale <= 0 {
		errs = append(errs, fmt.Errorf("-scale %v, need > 0", p.Scale))
	}
	if p.Eta <= 0 || p.Eta > 1 {
		errs = append(errs, fmt.Errorf("-eta %v outside (0, 1]", p.Eta))
	}
	if p.Xi < 0 || p.Xi > 1 {
		errs = append(errs, fmt.Errorf("-xi %v outside [0, 1]", p.Xi))
	}
	if p.RateLimit < 0 {
		errs = append(errs, fmt.Errorf("-rate-limit %v, need >= 0 (0 = unlimited)", p.RateLimit))
	}
	return errors.Join(errs...)
}

// Rebalance are the adaptive-rebalancing flags shared by the terids CLIs.
// The combinations are constrained: the skew monitor needs both a trigger
// ratio and a sampling period, and auto-sized sharding contradicts an
// explicitly pinned shard count.
type Rebalance struct {
	// Threshold is -rebalance-threshold: the imbalance ratio (most loaded
	// shard over the per-shard mean) that arms an automatic rebalance.
	// 0 disables the monitor; anything else must be >= 1 to be meaningful.
	Threshold float64
	// Interval is -rebalance-interval: the monitor's sampling period
	// (required alongside Threshold).
	Interval time.Duration
	// AutoShards is -auto-shards (terids): auto-size the shard count and
	// enable adaptive rebalancing with defaults.
	AutoShards bool
	// ShardsSet reports that the user passed -shards explicitly (commands
	// without -auto-shards pass false).
	ShardsSet bool
	// Follower reports that the process runs as a read-only replica
	// (-follow): the skew monitor is meaningless there — the follower
	// adopts the writer's layout from its checkpoints instead of making
	// local placement decisions.
	Follower bool
}

// Validate checks the rebalance flag combinations, joining all violations
// into one error.
func (r Rebalance) Validate() error {
	var errs []error
	if r.Threshold < 0 || (r.Threshold > 0 && r.Threshold < 1) {
		errs = append(errs, fmt.Errorf("-rebalance-threshold %v, need >= 1 (0 = disabled): it is a max/mean ratio", r.Threshold))
	}
	if r.Interval < 0 {
		errs = append(errs, fmt.Errorf("-rebalance-interval %v, need >= 0", r.Interval))
	}
	if r.Threshold > 0 && r.Interval == 0 {
		errs = append(errs, errors.New(
			"-rebalance-threshold requires -rebalance-interval: the monitor needs a sampling period"))
	}
	if r.Interval > 0 && r.Threshold == 0 {
		errs = append(errs, errors.New(
			"-rebalance-interval requires -rebalance-threshold: a period without a trigger ratio does nothing"))
	}
	if r.AutoShards && r.ShardsSet {
		errs = append(errs, errors.New(
			"-auto-shards and -shards are mutually exclusive: auto-sharding picks and adapts the shard count itself"))
	}
	if r.Follower && (r.Threshold > 0 || r.Interval > 0) {
		errs = append(errs, errors.New(
			"-rebalance-threshold/-rebalance-interval are incompatible with -follow: a follower adopts the writer's layout from its checkpoints"))
	}
	return errors.Join(errs...)
}

// Durability are the WAL/checkpoint flags shared by the terids CLIs. The
// combinations are constrained: a WAL directory carries its own checkpoints
// and auto-recovers, so an explicit -restore alongside it is ambiguous, and
// the background checkpointer has nowhere to write without a WAL directory.
type Durability struct {
	// WALDir is -wal-dir (terids-serve) / -wal (terids): the durability
	// root. Empty disables the subsystem.
	WALDir string
	// Follow is -follow (terids-serve): a writer's durability root to tail
	// as a read-only follower replica. Mutually exclusive with WALDir and
	// Restore — a process is the writer of a directory or its follower,
	// never both; the checkpoint flags stay valid because they configure
	// the checkpointer the replica starts if it is promoted to writer.
	Follow string
	// Restore is -restore: an explicit checkpoint file to boot from.
	Restore string
	// CheckpointInterval is -checkpoint-interval: the background
	// checkpointer period (0 = disabled; requires WALDir when set).
	CheckpointInterval time.Duration
	// CheckpointKeep is -checkpoint-keep: snapshots retained, ≥ 1 (commands
	// without the flag pass 1).
	CheckpointKeep int
	// CheckpointDelta is -checkpoint-delta: incremental (delta) checkpoints
	// written between full snapshots, ≥ 0 (0 = always full; requires WALDir
	// when set — deltas only exist under the checkpointer).
	CheckpointDelta int
}

// Validate checks the durability flag combinations, joining all violations
// into one error.
func (d Durability) Validate() error {
	var errs []error
	if d.WALDir != "" && d.Restore != "" {
		errs = append(errs, errors.New(
			"-restore and the WAL directory flag are mutually exclusive: the WAL directory auto-recovers from its own newest checkpoint"))
	}
	if d.Follow != "" && d.WALDir != "" {
		errs = append(errs, errors.New(
			"-follow and the WAL directory flag are mutually exclusive: a process either writes a durability root or tails one as a replica"))
	}
	if d.Follow != "" && d.Restore != "" {
		errs = append(errs, errors.New(
			"-follow and -restore are mutually exclusive: a follower boots from the tailed directory's own newest checkpoint"))
	}
	if d.CheckpointInterval < 0 {
		errs = append(errs, fmt.Errorf("-checkpoint-interval %v, need >= 0 (0 = disabled)", d.CheckpointInterval))
	}
	if d.CheckpointInterval > 0 && d.WALDir == "" && d.Follow == "" {
		errs = append(errs, errors.New(
			"-checkpoint-interval requires the WAL directory flag (or -follow, where it arms the post-promotion checkpointer): periodic checkpoints are written under it"))
	}
	if d.CheckpointKeep < 1 {
		errs = append(errs, fmt.Errorf("-checkpoint-keep %d, need >= 1", d.CheckpointKeep))
	}
	if d.CheckpointDelta < 0 {
		errs = append(errs, fmt.Errorf("-checkpoint-delta %d, need >= 0 (0 = full snapshots only)", d.CheckpointDelta))
	}
	if d.CheckpointDelta > 0 && d.WALDir == "" && d.Follow == "" {
		errs = append(errs, errors.New(
			"-checkpoint-delta requires the WAL directory flag (or -follow): delta checkpoints are written by its background checkpointer"))
	}
	return errors.Join(errs...)
}

// Obs are the observability flags shared by the terids CLIs: the sampled
// arrival-trace rate and the debug (pprof/expvar) listener address.
type Obs struct {
	// TraceSample is -trace-sample: record every Nth arrival's full stage
	// timeline, ≥ 0 (0 disables tracing).
	TraceSample int
	// DebugAddr is -debug-addr: the separate pprof/expvar listener address.
	// Empty disables it.
	DebugAddr string
	// Addr is the main serving address (commands without a serving listener
	// pass ""); the debug listener must not collide with it.
	Addr string
}

// Validate checks the observability flag combinations, joining all
// violations into one error.
func (o Obs) Validate() error {
	var errs []error
	if o.TraceSample < 0 {
		errs = append(errs, fmt.Errorf("-trace-sample %d, need >= 0 (0 = disabled)", o.TraceSample))
	}
	if o.DebugAddr != "" && o.Addr != "" && o.DebugAddr == o.Addr {
		errs = append(errs, fmt.Errorf("-debug-addr %s collides with the serving address: the debug listener must be separate", o.DebugAddr))
	}
	return errors.Join(errs...)
}

// Replay are the /results replay flags of terids-serve. The ring capacity is
// load-bearing: a non-positive -replay-buffer would divide by zero in the
// ring's seq%capacity indexing, so it is rejected here at startup.
type Replay struct {
	// Buffer is -replay-buffer: merged results retained in the in-memory
	// replay ring, ≥ 1.
	Buffer int
	// Depth is -replay-depth: the maximum arrivals one WAL-backed deep
	// replay may re-run, ≥ 0 (0 = unlimited; requires a WAL directory to
	// matter, but is accepted without one since it is purely a bound).
	Depth int64
}

// Validate checks the replay flag ranges, joining all violations into one
// error.
func (r Replay) Validate() error {
	var errs []error
	if r.Buffer < 1 {
		errs = append(errs, fmt.Errorf("-replay-buffer %d, need >= 1 (the replay ring cannot be empty)", r.Buffer))
	}
	if r.Depth < 0 {
		errs = append(errs, fmt.Errorf("-replay-depth %d, need >= 0 (0 = unlimited)", r.Depth))
	}
	return errors.Join(errs...)
}
