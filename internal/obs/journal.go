// The event journal is the narrative half of the observability subsystem:
// a bounded, concurrency-safe ring of structured lifecycle events — things
// that happen occasionally and matter afterwards (rebalances, checkpoints,
// WAL segment rotation, deep replays, throttle episodes, SLO state
// transitions, recovery summaries). Metrics answer "how fast"; the journal
// answers "what happened right before". It is served live at GET /events
// and snapshotted into every flight-recorder bundle, so the sequence of
// events leading up to a stall or crash survives the process.
//
// Recording is cheap (one mutex, no allocation beyond the caller's field
// map) and never blocks on a reader; the ring silently overwrites the
// oldest entries, bounding memory forever. Every event carries a
// monotonically increasing sequence number, so readers page with a cursor
// (?from=seq) and can detect gaps left by overwrites.

package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one structured lifecycle event.
type Event struct {
	// Seq is the journal-assigned monotone sequence number (0-based).
	Seq int64 `json:"seq"`
	// Time is when the event was recorded.
	Time time.Time `json:"time"`
	// Type is the event's machine-readable kind (e.g. "rebalance_done",
	// "checkpoint", "wal_rotate", "slo_transition").
	Type string `json:"type"`
	// Msg is an optional human-readable one-liner.
	Msg string `json:"msg,omitempty"`
	// Fields carries the event's structured payload.
	Fields map[string]any `json:"fields,omitempty"`
}

// Journal is a bounded ring of events. The zero value is not usable; use
// NewJournal or the process-wide DefaultJournal. A nil *Journal is safe to
// record into (no-op), so instrumentation can be switched off by leaving
// the pointer nil.
type Journal struct {
	mu   sync.Mutex
	buf  []Event
	n    int64 // total events ever recorded == next sequence number
	next int   // next write position
}

// defaultJournalCap bounds the process-wide journal: lifecycle events are
// rare (per rebalance / checkpoint / segment, not per arrival), so 1024
// spans hours to days of history in a few hundred KB.
const defaultJournalCap = 1024

// NewJournal builds a journal retaining the newest capacity events
// (minimum 1).
func NewJournal(capacity int) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	return &Journal{buf: make([]Event, capacity)}
}

var defaultJournal = NewJournal(defaultJournalCap)

// DefaultJournal is the process-wide journal every subsystem records into
// unless explicitly pointed elsewhere — the journal GET /events serves.
func DefaultJournal() *Journal { return defaultJournal }

// Record appends one event, assigning its sequence number and timestamp.
// Safe on a nil journal (no-op), so callers gate instrumentation with the
// pointer alone.
func (j *Journal) Record(typ, msg string, fields map[string]any) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.buf[j.next] = Event{Seq: j.n, Time: time.Now(), Type: typ, Msg: msg, Fields: fields}
	j.next = (j.next + 1) % len(j.buf)
	j.n++
	j.mu.Unlock()
}

// NextSeq returns the sequence number the next recorded event will get.
func (j *Journal) NextSeq() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// OldestSeq returns the sequence number of the oldest event still
// retained in the ring (== NextSeq when the journal is empty). Cursors
// below it have fallen off the ring; servers use it to report the gap
// explicitly instead of silently resuming.
func (j *Journal) OldestSeq() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	retained := j.n
	if retained > int64(len(j.buf)) {
		retained = int64(len(j.buf))
	}
	return j.n - retained
}

// Snapshot returns every retained event, oldest first.
func (j *Journal) Snapshot() []Event {
	return j.Since(0)
}

// Since returns the retained events with sequence >= from, oldest first.
// Events already overwritten are silently absent — the first returned
// event's Seq tells the caller how much history survived.
func (j *Journal) Since(from int64) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	retained := j.n
	if retained > int64(len(j.buf)) {
		retained = int64(len(j.buf))
	}
	oldest := j.n - retained
	if from < oldest {
		from = oldest
	}
	if from >= j.n {
		return nil
	}
	out := make([]Event, 0, j.n-from)
	// Index of the event with sequence s is next - (n - s) mod len.
	for s := from; s < j.n; s++ {
		idx := (j.next - int(j.n-s)) % len(j.buf)
		if idx < 0 {
			idx += len(j.buf)
		}
		out = append(out, j.buf[idx])
	}
	return out
}

// WriteNDJSON streams the retained events with sequence >= from to w, one
// JSON object per line, oldest first.
func (j *Journal) WriteNDJSON(w io.Writer, from int64) error {
	enc := json.NewEncoder(w)
	for _, ev := range j.Since(from) {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
