package obs

import (
	"bufio"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// sampleLine matches one Prometheus text-exposition sample:
// name{labels} value  (labels optional).
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

func TestExpositionParseable(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_arrivals_total", "Arrivals.", nil).Add(42)
	r.Gauge("test_pending", "Pending.", nil).Set(3)
	r.GaugeFunc("test_uptime_seconds", "Uptime.", nil, func() float64 { return 1.5 })
	h := r.Histogram("test_latency_seconds", "Latency.", Labels{"shard": "0"})
	h.Observe(int64(5 * time.Microsecond))
	h.Observe(int64(80 * time.Millisecond))

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("exposition must end in a newline")
	}

	seenHelp := map[string]bool{}
	seenType := map[string]bool{}
	var families []string
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)[0]
			seenHelp[name] = true
			families = append(families, name)
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			seenType[fields[0]] = true
		default:
			if !sampleLine.MatchString(line) {
				t.Fatalf("unparseable sample line: %q", line)
			}
			name := line[:strings.IndexAny(line, "{ ")]
			base := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if cut, ok := strings.CutSuffix(name, suf); ok {
					base = cut
					break
				}
			}
			if !seenHelp[base] || !seenType[base] {
				t.Fatalf("sample %q before its family header", line)
			}
		}
	}
	for _, want := range []string{
		"test_arrivals_total", "test_pending", "test_uptime_seconds",
		"test_latency_seconds", "test_latency_seconds_q",
	} {
		if !seenHelp[want] || !seenType[want] {
			t.Fatalf("family %s missing HELP/TYPE (helps: %v)", want, seenHelp)
		}
	}
	for i := 1; i < len(families); i++ {
		if families[i] <= families[i-1] {
			t.Fatalf("families out of order: %s after %s", families[i], families[i-1])
		}
	}
	if !strings.Contains(out, "test_arrivals_total 42\n") {
		t.Fatalf("counter sample missing:\n%s", out)
	}
	if !strings.Contains(out, `test_latency_seconds_q{shard="0",q="0.99"}`) {
		t.Fatalf("quantile gauge missing:\n%s", out)
	}
}

func TestHistogramBucketMonotonicity(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mono_seconds", "m", nil)
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * i * 100)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	buckets := 0
	var last float64
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "mono_seconds_bucket{") {
			continue
		}
		buckets++
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatalf("bucket value in %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("cumulative bucket decreased: %q after %v", line, prev)
		}
		prev, last = v, v
	}
	if buckets != histBuckets {
		t.Fatalf("got %d bucket lines, want %d", buckets, histBuckets)
	}
	if last != float64(h.Count()) {
		t.Fatalf("final cumulative bucket %v != count %d", last, h.Count())
	}
	if !strings.Contains(b.String(), `le="+Inf"`) {
		t.Fatal("missing +Inf bucket")
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Every goroutine goes through get-or-create, exercising the
			// registry lock against concurrent increments.
			c := r.Counter("conc_total", "c", nil)
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	// Scrape while the writers run: monotonic reads, no torn values.
	lastSeen := int64(0)
	for i := 0; i < 20; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(b.String(), "\n") {
			if v, ok := strings.CutPrefix(line, "conc_total "); ok {
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					t.Fatalf("counter sample %q: %v", line, err)
				}
				if n < lastSeen {
					t.Fatalf("counter went backwards: %d after %d", n, lastSeen)
				}
				lastSeen = n
			}
		}
	}
	wg.Wait()
	if got := r.Counter("conc_total", "c", nil).Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "q", nil)
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", q)
	}
	// 90 fast observations (~1µs), 10 slow (~1ms): p50 must land near the
	// fast mode, p99 near the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(int64(time.Microsecond))
	}
	for i := 0; i < 10; i++ {
		h.Observe(int64(time.Millisecond))
	}
	p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
	if p50 > float64(4*time.Microsecond) {
		t.Fatalf("p50 = %v ns, want near 1µs", p50)
	}
	if p99 < float64(400*time.Microsecond) {
		t.Fatalf("p99 = %v ns, want near 1ms", p99)
	}
	if p99 < p50 {
		t.Fatalf("p99 (%v) < p50 (%v)", p99, p50)
	}
	if h.Count() != 100 || h.Sum() <= 0 {
		t.Fatalf("count/sum = %d/%d", h.Count(), h.Sum())
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Count() != 1 || h.Sum() != 0 {
		t.Fatalf("negative observation: count %d sum %d, want 1/0", h.Count(), h.Sum())
	}
}

func TestGetOrCreateIdentityAndMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "s", Labels{"k": "v"})
	b := r.Counter("same_total", "s", Labels{"k": "v"})
	if a != b {
		t.Fatal("same (name, labels) must return the same instrument")
	}
	if c := r.Counter("same_total", "s", Labels{"k": "w"}); c == a {
		t.Fatal("different labels must return a different instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering an existing name under another type must panic")
		}
	}()
	r.Gauge("same_total", "s", nil)
}

func TestGaugeFuncReplace(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("gf", "g", nil, func() float64 { return 1 })
	r.GaugeFunc("gf", "g", nil, func() float64 { return 2 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "gf 2\n") {
		t.Fatalf("re-registered GaugeFunc must win:\n%s", b.String())
	}
}

func TestCollector(t *testing.T) {
	r := NewRegistry()
	r.Collect(func(e *Emit) {
		e.Gauge("coll_gauge", "from collector", nil, 7)
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "coll_gauge 7\n") {
		t.Fatalf("collector output missing:\n%s", b.String())
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if v := g.Value(); v != 0 {
		t.Fatalf("gauge = %v after balanced adds, want 0", v)
	}
}

func TestBucketBounds(t *testing.T) {
	if got := bucketOf(0); got != 0 {
		t.Fatalf("bucketOf(0) = %d", got)
	}
	if got := bucketOf(1 << histMinShift); got != 0 {
		t.Fatalf("bucketOf(min bound) = %d, want 0", got)
	}
	if got := bucketOf(math.MaxInt64); got != histBuckets-1 {
		t.Fatalf("bucketOf(max) = %d, want overflow bucket", got)
	}
	// Every value must land in a bucket whose bound covers it.
	for shift := 0; shift < 63; shift++ {
		v := int64(1) << shift
		b := bucketOf(v)
		if hi := bucketBound(b); float64(v) > hi {
			t.Fatalf("value %d over its bucket %d bound %v", v, b, hi)
		}
	}
}

func TestRing(t *testing.T) {
	r := NewRing[int](3)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot = %v", got)
	}
	r.Add(1)
	r.Add(2)
	if got := fmt.Sprint(r.Snapshot()); got != "[1 2]" {
		t.Fatalf("partial ring = %s", got)
	}
	r.Add(3)
	r.Add(4) // overwrites 1
	r.Add(5) // overwrites 2
	if got := fmt.Sprint(r.Snapshot()); got != "[3 4 5]" {
		t.Fatalf("wrapped ring = %s, want [3 4 5]", got)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
}
