package obs

import (
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders every registered instrument and collector sample
// in the Prometheus text exposition format (version 0.0.4): families sorted
// by name, each with one # HELP and # TYPE header, histogram buckets
// cumulative in ascending le order. Histograms additionally export a
// read-time quantile gauge family <name>_q{q="0.50"|"0.95"|"0.99"}.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	collectors := append([]func(*Emit){}, r.collectors...)
	r.mu.RUnlock()

	em := &Emit{lines: make(map[string]*famOut)}
	for _, fn := range collectors {
		fn(em)
	}

	out := make(map[string]*famOut, len(fams)+len(em.lines))
	for _, f := range fams {
		fo := &famOut{help: f.help, typ: f.typ}
		var b strings.Builder
		for _, inst := range f.insts {
			inst.sample(&b, f.name)
		}
		fo.out = append(fo.out, b.String())
		out[f.name] = fo
		if f.typ == "histogram" {
			qf := &famOut{help: f.help + " (read-time quantiles)", typ: "gauge"}
			var qb strings.Builder
			for _, inst := range f.insts {
				h := inst.(*Histogram)
				for _, q := range quantiles {
					lbl := `q="` + q.name + `"`
					if h.lbl != "" {
						lbl = h.lbl + "," + lbl
					}
					writeSample(&qb, f.name+"_q", "", lbl, h.Quantile(q.q)/h.scale)
				}
			}
			qf.out = append(qf.out, qb.String())
			out[f.name+"_q"] = qf
		}
	}
	for name, fo := range em.lines {
		if have, ok := out[name]; ok {
			// A collector extending a static family: append its samples,
			// keep the existing header.
			have.out = append(have.out, fo.out...)
			continue
		}
		out[name] = fo
	}

	names := make([]string, 0, len(out))
	for name := range out {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		fo := out[name]
		b.WriteString("# HELP ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(fo.help)
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(fo.typ)
		b.WriteByte('\n')
		for _, chunk := range fo.out {
			b.WriteString(chunk)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
