// The flight recorder freezes the process's observability state into one
// self-contained diagnostic bundle on disk — recent journal events, the
// sampled trace ring, a full /metrics exposition, engine stats, and a
// goroutine dump — so post-mortems never depend on the process staying
// alive or a scraper having been attached. Bundles are written atomically
// (temp file + rename in the target directory), so a reader never sees a
// torn file even if the process dies mid-dump.
//
// Three triggers share the same path: SIGQUIT (operator-initiated, the
// classic "dump and exit"), POST /debug/dump (live capture without
// stopping anything), and panic (via Go's crash-output file — an
// unrecovered panic can't run arbitrary code, so the runtime writes the
// crash report itself and the bundle from the last explicit dump or the
// crash text is what survives).

package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"
)

// FlightBundle is the serialized diagnostic bundle.
type FlightBundle struct {
	Reason       string          `json:"reason"`
	WrittenAt    time.Time       `json:"written_at"`
	Version      string          `json:"version,omitempty"`
	GoVersion    string          `json:"go_version"`
	NumGoroutine int             `json:"num_goroutine"`
	Events       []Event         `json:"events"`
	Traces       any             `json:"traces,omitempty"`
	Metrics      string          `json:"metrics"`
	Stats        json.RawMessage `json:"stats,omitempty"`
	Goroutines   string          `json:"goroutines"`
}

// Flight captures diagnostic bundles into a directory. The zero value is
// unusable; a nil *Flight is safe to Dump on (no-op, returns empty path).
type Flight struct {
	// Dir is the destination directory (created on first dump).
	Dir string
	// Version stamps bundles with the build's version string.
	Version string
	// Registry supplies the /metrics snapshot; nil means Default().
	Registry *Registry
	// Journal supplies recent events; nil means DefaultJournal().
	Journal *Journal
	// Traces, when set, returns the sampled trace ring (any
	// JSON-marshalable slice).
	Traces func() any
	// Stats, when set, returns engine stats (any JSON-marshalable value).
	Stats func() any
}

// Dump writes one bundle named flight-<unixnano>-<reason>.json and
// returns its path. Errors are returned, not fatal — a failing dump must
// never take down the process it is documenting.
func (f *Flight) Dump(reason string) (string, error) {
	if f == nil || f.Dir == "" {
		return "", nil
	}
	reg := f.Registry
	if reg == nil {
		reg = Default()
	}
	jr := f.Journal
	if jr == nil {
		jr = DefaultJournal()
	}
	var metrics strings.Builder
	_ = reg.WritePrometheus(&metrics)
	b := FlightBundle{
		Reason:       sanitizeReason(reason),
		WrittenAt:    time.Now(),
		Version:      f.Version,
		GoVersion:    runtime.Version(),
		NumGoroutine: runtime.NumGoroutine(),
		Events:       jr.Snapshot(),
		Metrics:      metrics.String(),
		Goroutines:   allStacks(),
	}
	if b.Events == nil {
		b.Events = []Event{}
	}
	if f.Traces != nil {
		b.Traces = f.Traces()
	}
	if f.Stats != nil {
		if raw, err := json.Marshal(f.Stats()); err == nil {
			b.Stats = raw
		}
	}
	if err := os.MkdirAll(f.Dir, 0o755); err != nil {
		return "", fmt.Errorf("flight: %w", err)
	}
	name := fmt.Sprintf("flight-%d-%s.json", b.WrittenAt.UnixNano(), b.Reason)
	final := filepath.Join(f.Dir, name)
	tmp, err := os.CreateTemp(f.Dir, ".flight-*")
	if err != nil {
		return "", fmt.Errorf("flight: %w", err)
	}
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", " ")
	if err := enc.Encode(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("flight: encode: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("flight: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("flight: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("flight: rename: %w", err)
	}
	return final, nil
}

// sanitizeReason keeps the reason filesystem-safe.
func sanitizeReason(r string) string {
	if r == "" {
		return "manual"
	}
	return strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			return c
		}
		return '_'
	}, r)
}

// allStacks captures every goroutine's stack, growing the buffer until
// the dump fits (capped at 16 MiB).
func allStacks() string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return string(buf[:n])
		}
		if len(buf) >= 16<<20 {
			return string(buf[:n])
		}
		buf = make([]byte, len(buf)*2)
	}
}
