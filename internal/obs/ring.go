package obs

import "sync"

// Ring is a bounded, concurrency-safe ring buffer: the newest capacity
// entries are retained, older ones silently overwritten. It backs the
// sampled arrival-trace store — tracing must never grow without bound or
// block the pipeline on a reader.
type Ring[T any] struct {
	mu   sync.Mutex
	buf  []T
	n    int // total ever added
	next int // next write position
}

// NewRing builds a ring retaining the newest capacity entries (minimum 1).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Add appends v, overwriting the oldest retained entry when full.
func (r *Ring[T]) Add(v T) {
	r.mu.Lock()
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	r.n++
	r.mu.Unlock()
}

// Len returns how many entries are currently retained.
func (r *Ring[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n < len(r.buf) {
		return r.n
	}
	return len(r.buf)
}

// Snapshot returns the retained entries, oldest first.
func (r *Ring[T]) Snapshot() []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n < len(r.buf) {
		out := make([]T, r.n)
		copy(out, r.buf[:r.n])
		return out
	}
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
