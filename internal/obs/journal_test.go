package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestJournalRecordAndSince(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 5; i++ {
		j.Record("checkpoint", fmt.Sprintf("cp %d", i), map[string]any{"i": i})
	}
	evs := j.Snapshot()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != int64(i) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Type != "checkpoint" {
			t.Fatalf("event %d has type %q", i, ev.Type)
		}
	}
	if got := j.Since(3); len(got) != 2 || got[0].Seq != 3 {
		t.Fatalf("Since(3) = %+v", got)
	}
	if got := j.Since(5); got != nil {
		t.Fatalf("Since(past end) = %+v, want nil", got)
	}
	if j.NextSeq() != 5 {
		t.Fatalf("NextSeq = %d, want 5", j.NextSeq())
	}
}

func TestJournalOverwritesOldest(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Record("e", "", nil)
	}
	evs := j.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	if evs[0].Seq != 6 || evs[3].Seq != 9 {
		t.Fatalf("retained seqs %d..%d, want 6..9", evs[0].Seq, evs[3].Seq)
	}
	// A cursor pointing into overwritten history starts at the oldest
	// retained event.
	if got := j.Since(2); len(got) != 4 || got[0].Seq != 6 {
		t.Fatalf("Since(2) = %+v", got)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record("x", "", nil) // must not panic
	if j.Snapshot() != nil || j.NextSeq() != 0 || j.OldestSeq() != 0 {
		t.Fatal("nil journal should be empty")
	}
}

func TestJournalOldestSeq(t *testing.T) {
	j := NewJournal(4)
	if j.OldestSeq() != 0 {
		t.Fatalf("empty journal OldestSeq = %d, want 0", j.OldestSeq())
	}
	for i := 0; i < 3; i++ {
		j.Record("e", "", nil)
	}
	if j.OldestSeq() != 0 {
		t.Fatalf("unwrapped OldestSeq = %d, want 0", j.OldestSeq())
	}
	for i := 0; i < 7; i++ {
		j.Record("e", "", nil)
	}
	// 10 recorded, 4 retained: seqs 6..9 survive.
	if j.OldestSeq() != 6 {
		t.Fatalf("wrapped OldestSeq = %d, want 6", j.OldestSeq())
	}
	if evs := j.Snapshot(); evs[0].Seq != j.OldestSeq() {
		t.Fatalf("Snapshot oldest %d != OldestSeq %d", evs[0].Seq, j.OldestSeq())
	}
}

func TestJournalWriteNDJSON(t *testing.T) {
	j := NewJournal(8)
	j.Record("rebalance_start", "trigger manual", map[string]any{"trigger": "manual"})
	j.Record("rebalance_done", "", map[string]any{"k": 4})
	var buf bytes.Buffer
	if err := j.WriteNDJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if ev.Seq != int64(lines) {
			t.Fatalf("line %d has seq %d", lines, ev.Seq)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("got %d NDJSON lines, want 2", lines)
	}
}

func TestJournalConcurrentRecord(t *testing.T) {
	j := NewJournal(64)
	var wg sync.WaitGroup
	const writers, per = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Record("c", "", nil)
				j.Since(0)
			}
		}()
	}
	wg.Wait()
	if j.NextSeq() != writers*per {
		t.Fatalf("NextSeq = %d, want %d", j.NextSeq(), writers*per)
	}
	evs := j.Snapshot()
	if len(evs) != 64 {
		t.Fatalf("retained %d, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}
