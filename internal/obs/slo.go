// The SLO engine turns raw instrument families into service-level
// verdicts. Objectives are declared as small text specs — a latency
// quantile bound over a histogram family, or an error ratio between two
// counter families — and evaluated continuously over sliding windows
// using the multi-window burn-rate method: a fast window (default 5m)
// catches sharp regressions quickly, a slow window (default 1h) catches
// slow burns without flapping on noise. Burn rate is the ratio of the
// observed bad fraction to the objective's error budget, so burn == 1
// means "spending budget exactly as fast as allowed" and burn == 10 means
// "the whole budget gone in a tenth of the window".
//
// Evaluation is snapshot-differencing: every tick the engine copies each
// objective's cumulative instrument state into a bounded ring; windowed
// statistics are the difference between the newest snapshot and the one
// closest to a window-width ago. That makes evaluation O(windows) memory
// per objective and entirely non-invasive — the hot path never knows SLOs
// exist. Verdicts surface in three places: GET /slo (JSON), terids_slo_*
// gauges in /metrics, and a journal event on every state transition.
//
// Spec grammar (one objective per spec):
//
//	latency:  <name>:<hist_family>[{k=v,...}]:p<QQ><<duration>
//	          e.g.  ingest-p99:terids_impute_seconds:p99<250ms
//	ratio:    <name>:<err_family>[{...}]/<total_family>[{...}]<<fraction>
//	          e.g.  errors:terids_rejected_total/terids_arrivals_total<0.01
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SLOState is an objective's health verdict.
type SLOState int32

const (
	SLOOk SLOState = iota
	SLOWarn
	SLOBreach
)

func (s SLOState) String() string {
	switch s {
	case SLOWarn:
		return "warn"
	case SLOBreach:
		return "breach"
	default:
		return "ok"
	}
}

// sloKind separates the two objective shapes.
type sloKind int

const (
	sloLatency sloKind = iota
	sloRatio
)

// Objective is one parsed SLO declaration.
type Objective struct {
	// Name identifies the objective in /slo, gauges, and journal events.
	Name string
	// Spec is the original spec text, echoed back for operators.
	Spec string

	kind sloKind

	// Latency objectives: quantile of Family must stay below BoundRaw
	// (raw instrument units, nanoseconds for latency histograms).
	Family       string
	FamilyLabels Labels
	Quantile     float64
	BoundRaw     float64

	// Ratio objectives: ErrFamily/TotalFamily must stay below Max.
	ErrFamily   string
	ErrLabels   Labels
	TotalFamily string
	TotalLabels Labels
	Max         float64
}

// ParseSLO parses one objective spec (see the package grammar above).
func ParseSLO(spec string) (Objective, error) {
	obj := Objective{Spec: spec}
	lt := strings.LastIndexByte(spec, '<')
	if lt < 0 {
		return obj, fmt.Errorf("slo spec %q: missing '<bound'", spec)
	}
	lhs, bound := spec[:lt], spec[lt+1:]
	colon := strings.IndexByte(lhs, ':')
	if colon <= 0 {
		return obj, fmt.Errorf("slo spec %q: missing '<name>:' prefix", spec)
	}
	obj.Name = lhs[:colon]
	body := lhs[colon+1:]

	if slash := splitTopLevel(body, '/'); slash >= 0 {
		// Ratio: err_family/total_family < fraction.
		obj.kind = sloRatio
		var err error
		if obj.ErrFamily, obj.ErrLabels, err = parseFamily(body[:slash]); err != nil {
			return obj, fmt.Errorf("slo spec %q: %v", spec, err)
		}
		if obj.TotalFamily, obj.TotalLabels, err = parseFamily(body[slash+1:]); err != nil {
			return obj, fmt.Errorf("slo spec %q: %v", spec, err)
		}
		obj.Max, err = strconv.ParseFloat(bound, 64)
		if err != nil || obj.Max <= 0 || obj.Max >= 1 {
			return obj, fmt.Errorf("slo spec %q: ratio bound must be a fraction in (0,1), got %q", spec, bound)
		}
		return obj, nil
	}

	// Latency: family:pQQ < duration.
	obj.kind = sloLatency
	qcolon := splitTopLevel(body, ':')
	if qcolon < 0 {
		return obj, fmt.Errorf("slo spec %q: want '<family>:p<QQ>' or '<err>/<total>'", spec)
	}
	var err error
	if obj.Family, obj.FamilyLabels, err = parseFamily(body[:qcolon]); err != nil {
		return obj, fmt.Errorf("slo spec %q: %v", spec, err)
	}
	qs := body[qcolon+1:]
	if !strings.HasPrefix(qs, "p") || len(qs) < 2 {
		return obj, fmt.Errorf("slo spec %q: quantile must look like p50/p99/p999, got %q", spec, qs)
	}
	q, err := strconv.ParseFloat("0."+qs[1:], 64)
	if err != nil || q <= 0 || q >= 1 {
		return obj, fmt.Errorf("slo spec %q: bad quantile %q", spec, qs)
	}
	obj.Quantile = q
	d, err := time.ParseDuration(bound)
	if err != nil || d <= 0 {
		return obj, fmt.Errorf("slo spec %q: bad latency bound %q (want a duration like 250ms)", spec, bound)
	}
	obj.BoundRaw = float64(d.Nanoseconds())
	return obj, nil
}

// splitTopLevel finds sep outside any {...} label selector and outside
// double-quoted label values, or -1.
func splitTopLevel(s string, sep byte) int {
	depth := 0
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inQuote {
			if c == '\\' {
				i++ // skip the escaped character
			} else if c == '"' {
				inQuote = false
			}
			continue
		}
		switch c {
		case '"':
			inQuote = true
		case '{':
			depth++
		case '}':
			depth--
		case sep:
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// parseFamily splits "family{k=v,k2=v2}" into name and labels. Values may
// be double-quoted, and a quoted value may contain commas, braces, and
// backslash-escaped quotes — the selector body is split only on commas
// that sit outside quotes, never blindly on every comma.
func parseFamily(s string) (string, Labels, error) {
	brace := strings.IndexByte(s, '{')
	if brace < 0 {
		if s == "" {
			return "", nil, fmt.Errorf("empty metric family")
		}
		return s, nil, nil
	}
	if !strings.HasSuffix(s, "}") {
		return "", nil, fmt.Errorf("unclosed label selector in %q", s)
	}
	name := s[:brace]
	if name == "" {
		return "", nil, fmt.Errorf("empty metric family")
	}
	lbl := Labels{}
	for _, pair := range splitLabelPairs(s[brace+1 : len(s)-1]) {
		if pair == "" {
			continue
		}
		eq := strings.IndexByte(pair, '=')
		if eq <= 0 {
			return "", nil, fmt.Errorf("bad label pair %q", pair)
		}
		val, err := unquoteLabelValue(pair[eq+1:])
		if err != nil {
			return "", nil, fmt.Errorf("bad label pair %q: %v", pair, err)
		}
		lbl[pair[:eq]] = val
	}
	return name, lbl, nil
}

// splitLabelPairs splits a selector body on commas outside double quotes,
// so family{path="a,b"} stays one pair.
func splitLabelPairs(s string) []string {
	var out []string
	start := 0
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// unquoteLabelValue strips the optional surrounding double quotes from a
// label value, resolving \" and \\ escapes inside a quoted value.
func unquoteLabelValue(v string) (string, error) {
	if len(v) == 0 || v[0] != '"' {
		if strings.ContainsRune(v, '"') {
			return "", fmt.Errorf("stray quote in value %q", v)
		}
		return v, nil
	}
	if len(v) < 2 || v[len(v)-1] != '"' {
		return "", fmt.Errorf("unterminated quote in value %q", v)
	}
	body := v[1 : len(v)-1]
	if !strings.ContainsRune(body, '\\') {
		return body, nil
	}
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		if body[i] == '\\' && i+1 < len(body) {
			i++
		}
		b.WriteByte(body[i])
	}
	return b.String(), nil
}

// ParseSLOFile parses one spec per line; blank lines and #-comments are
// skipped.
func ParseSLOFile(content string) ([]Objective, error) {
	var out []Objective
	for i, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		obj, err := ParseSLO(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", i+1, err)
		}
		out = append(out, obj)
	}
	return out, nil
}

// sloSample is one tick's snapshot of an objective's instruments.
type sloSample struct {
	t        time.Time
	resolved bool
	hist     HistSnapshot // latency objectives
	errs     int64        // ratio objectives
	total    int64
}

// sloTracker carries one objective's snapshot ring and current verdict.
type sloTracker struct {
	obj     Objective
	samples []sloSample // ring
	n       int         // samples recorded (saturates at len)
	next    int
	state   SLOState

	burnFast, burnSlow, stateG, currentG, budgetG *Gauge
}

// SLOStatus is one objective's verdict as served by GET /slo.
type SLOStatus struct {
	Objective string `json:"objective"`
	Spec      string `json:"spec"`
	Kind      string `json:"kind"`
	// Current is the windowed observation over the fast window: the
	// quantile in seconds for latency objectives, the ratio for ratio
	// objectives.
	Current float64 `json:"current"`
	// Bound is the objective's threshold in the same unit as Current.
	Bound           float64 `json:"bound"`
	BurnRateFast    float64 `json:"burn_rate_fast"`
	BurnRateSlow    float64 `json:"burn_rate_slow"`
	BudgetRemaining float64 `json:"budget_remaining"`
	State           string  `json:"state"`
	WindowFast      string  `json:"window_fast"`
	WindowSlow      string  `json:"window_slow"`
}

// SLOEngine periodically evaluates a set of objectives against a registry.
type SLOEngine struct {
	reg      *Registry
	journal  *Journal
	interval time.Duration
	fast     time.Duration
	slow     time.Duration

	mu       sync.Mutex
	trackers []*sloTracker

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewSLOEngine builds an engine evaluating objectives every interval over
// fast/slow burn windows. Gauges register into reg immediately; nothing
// evaluates until Run or Tick.
func NewSLOEngine(reg *Registry, journal *Journal, objectives []Objective, interval, fast, slow time.Duration) *SLOEngine {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	if fast <= 0 {
		fast = 5 * time.Minute
	}
	if slow < fast {
		slow = 12 * fast
	}
	// Ring must cover the slow window at tick granularity, +1 so the
	// newest and the window-old snapshot coexist.
	ringCap := int(slow/interval) + 2
	e := &SLOEngine{
		reg:      reg,
		journal:  journal,
		interval: interval,
		fast:     fast,
		slow:     slow,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, obj := range objectives {
		lbl := Labels{"slo": obj.Name}
		t := &sloTracker{
			obj:      obj,
			samples:  make([]sloSample, ringCap),
			burnFast: reg.Gauge("terids_slo_burn_rate", "SLO error-budget burn rate per window.", Labels{"slo": obj.Name, "window": "fast"}),
			burnSlow: reg.Gauge("terids_slo_burn_rate", "SLO error-budget burn rate per window.", Labels{"slo": obj.Name, "window": "slow"}),
			stateG:   reg.Gauge("terids_slo_state", "SLO state: 0 ok, 1 warn, 2 breach.", lbl),
			currentG: reg.Gauge("terids_slo_current", "Windowed SLO observation (seconds or ratio).", lbl),
			budgetG:  reg.Gauge("terids_slo_budget_remaining", "Fraction of the slow-window error budget left.", lbl),
		}
		t.budgetG.Set(1)
		e.trackers = append(e.trackers, t)
	}
	return e
}

// Objectives returns the engine's objective count.
func (e *SLOEngine) Objectives() int { return len(e.trackers) }

// Run evaluates on the engine's interval until Stop.
func (e *SLOEngine) Run() {
	go func() {
		defer close(e.done)
		tick := time.NewTicker(e.interval)
		defer tick.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-tick.C:
				e.Tick(time.Now())
			}
		}
	}()
}

// Stop halts the evaluation loop (idempotent).
func (e *SLOEngine) Stop() {
	e.stopOnce.Do(func() { close(e.stop) })
	<-e.done
}

// Tick takes one snapshot per objective at time now and re-evaluates
// verdicts. Exported so tests drive evaluation deterministically.
func (e *SLOEngine) Tick(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, t := range e.trackers {
		e.tickOne(t, now)
	}
}

func (e *SLOEngine) tickOne(t *sloTracker, now time.Time) {
	s := sloSample{t: now}
	switch t.obj.kind {
	case sloLatency:
		if h := e.reg.FindHistogram(t.obj.Family, t.obj.FamilyLabels); h != nil {
			s.hist = h.Snapshot()
			s.resolved = true
		}
	case sloRatio:
		errC := e.reg.FindCounter(t.obj.ErrFamily, t.obj.ErrLabels)
		totC := e.reg.FindCounter(t.obj.TotalFamily, t.obj.TotalLabels)
		if errC != nil || totC != nil {
			if errC != nil {
				s.errs = errC.Value()
			}
			if totC != nil {
				s.total = totC.Value()
			}
			s.resolved = true
		}
	}
	t.samples[t.next] = s
	t.next = (t.next + 1) % len(t.samples)
	if t.n < len(t.samples) {
		t.n++
	}

	current, burnFast := t.evalWindow(now, e.fast)
	_, burnSlow := t.evalWindow(now, e.slow)

	t.burnFast.Set(burnFast)
	t.burnSlow.Set(burnSlow)
	t.currentG.Set(current)
	budget := 1 - burnSlow
	if budget < 0 {
		budget = 0
	} else if budget > 1 {
		budget = 1
	}
	t.budgetG.Set(budget)

	state := SLOOk
	switch {
	case burnFast >= 1:
		state = SLOBreach
	case burnSlow >= 1 || burnFast >= 0.5:
		state = SLOWarn
	}
	if state != t.state {
		from := t.state
		t.state = state
		t.stateG.Set(float64(state))
		e.journal.Record("slo_transition",
			fmt.Sprintf("slo %s: %s -> %s", t.obj.Name, from, state),
			map[string]any{
				"slo":       t.obj.Name,
				"from":      from.String(),
				"to":        state.String(),
				"burn_fast": burnFast,
				"burn_slow": burnSlow,
				"current":   current,
			})
	} else {
		t.stateG.Set(float64(state))
	}
}

// evalWindow computes (current observation, burn rate) over the trailing
// window ending at the newest sample. With fewer samples than the window
// spans, the oldest available sample is the baseline (partial window).
func (t *sloTracker) evalWindow(now time.Time, window time.Duration) (current, burn float64) {
	if t.n == 0 {
		return 0, 0
	}
	newest := t.samples[(t.next-1+len(t.samples))%len(t.samples)]
	if !newest.resolved {
		return 0, 0
	}
	// Baseline: the newest sample at least window old; else the oldest.
	cutoff := now.Add(-window)
	var base sloSample
	found := false
	for i := 1; i <= t.n; i++ {
		s := t.samples[(t.next-i+len(t.samples))%len(t.samples)]
		if !s.resolved {
			continue
		}
		if !found {
			base, found = s, true
		}
		if !s.t.After(cutoff) {
			base = s
			break
		}
		base = s
	}
	if !found || base.t.Equal(newest.t) {
		// Single sample: treat cumulative-since-start as the window.
		base = sloSample{resolved: true}
		base.hist.Scale = newest.hist.Scale
	}

	switch t.obj.kind {
	case sloLatency:
		win := newest.hist.Sub(base.hist)
		if win.Count == 0 {
			return 0, 0
		}
		scale := win.Scale
		if scale == 0 {
			scale = 1
		}
		current = win.Quantile(t.obj.Quantile) / scale
		bad := win.FractionAbove(t.obj.BoundRaw)
		budget := 1 - t.obj.Quantile
		if budget <= 0 {
			budget = math.SmallestNonzeroFloat64
		}
		return current, bad / budget
	case sloRatio:
		dErr := float64(newest.errs - base.errs)
		dTot := float64(newest.total - base.total)
		if dTot <= 0 {
			return 0, 0
		}
		ratio := dErr / dTot
		if ratio < 0 {
			ratio = 0
		}
		return ratio, ratio / t.obj.Max
	}
	return 0, 0
}

// Status reports every objective's verdict, sorted by name.
func (e *SLOEngine) Status() []SLOStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SLOStatus, 0, len(e.trackers))
	for _, t := range e.trackers {
		st := SLOStatus{
			Objective:       t.obj.Name,
			Spec:            t.obj.Spec,
			BurnRateFast:    t.burnFast.Value(),
			BurnRateSlow:    t.burnSlow.Value(),
			BudgetRemaining: t.budgetG.Value(),
			Current:         t.currentG.Value(),
			State:           t.state.String(),
			WindowFast:      e.fast.String(),
			WindowSlow:      e.slow.String(),
		}
		switch t.obj.kind {
		case sloLatency:
			st.Kind = "latency"
			st.Bound = t.obj.BoundRaw / 1e9
		case sloRatio:
			st.Kind = "ratio"
			st.Bound = t.obj.Max
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Objective < out[j].Objective })
	return out
}
