package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlightDumpBundle(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	reg.Counter("terids_arrivals_total", "arrivals", nil).Add(42)
	jr := NewJournal(8)
	jr.Record("startup", "serving", map[string]any{"k": 4})

	f := &Flight{
		Dir:      dir,
		Version:  "test-1",
		Registry: reg,
		Journal:  jr,
		Traces:   func() any { return []map[string]any{{"seq": 1, "total_ns": 123}} },
		Stats:    func() any { return map[string]int{"shards": 4} },
	}
	path, err := f.Dump("sigquit")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir || !strings.Contains(filepath.Base(path), "sigquit") {
		t.Fatalf("bundle path %q", path)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b FlightBundle
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("bundle does not parse: %v", err)
	}
	if b.Reason != "sigquit" || b.Version != "test-1" {
		t.Fatalf("bundle header %+v", b)
	}
	if len(b.Events) < 1 || b.Events[0].Type != "startup" {
		t.Fatalf("bundle events %+v", b.Events)
	}
	if !strings.Contains(b.Metrics, "terids_arrivals_total 42") {
		t.Fatalf("bundle metrics missing counter:\n%s", b.Metrics)
	}
	if b.Traces == nil {
		t.Fatal("bundle missing traces")
	}
	var stats map[string]int
	if err := json.Unmarshal(b.Stats, &stats); err != nil || stats["shards"] != 4 {
		t.Fatalf("bundle stats %s (%v)", b.Stats, err)
	}
	if !strings.Contains(b.Goroutines, "goroutine") {
		t.Fatal("bundle missing goroutine dump")
	}
	if b.NumGoroutine < 1 {
		t.Fatal("bundle missing goroutine count")
	}

	// No temp litter left behind.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".flight-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestFlightNilAndDirless(t *testing.T) {
	var f *Flight
	if p, err := f.Dump("x"); err != nil || p != "" {
		t.Fatalf("nil flight: %q %v", p, err)
	}
	f2 := &Flight{}
	if p, err := f2.Dump("x"); err != nil || p != "" {
		t.Fatalf("dirless flight: %q %v", p, err)
	}
}

func TestFlightReasonSanitized(t *testing.T) {
	f := &Flight{Dir: t.TempDir(), Registry: NewRegistry(), Journal: NewJournal(1)}
	path, err := f.Dump("../../etc passwd")
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(path)
	if strings.ContainsAny(base, "/ ") || strings.Contains(base, "..") {
		t.Fatalf("unsanitized bundle name %q", base)
	}
	if filepath.Dir(path) != f.Dir {
		t.Fatalf("bundle escaped dir: %q", path)
	}
}
