package obs

import (
	"strings"
	"testing"
	"time"
)

func TestParseSLOLatency(t *testing.T) {
	obj, err := ParseSLO("ingest-p99:terids_impute_seconds:p99<250ms")
	if err != nil {
		t.Fatal(err)
	}
	if obj.Name != "ingest-p99" || obj.kind != sloLatency {
		t.Fatalf("parsed %+v", obj)
	}
	if obj.Family != "terids_impute_seconds" || obj.Quantile != 0.99 {
		t.Fatalf("parsed %+v", obj)
	}
	if obj.BoundRaw != 250e6 {
		t.Fatalf("bound = %v ns, want 250ms", obj.BoundRaw)
	}
}

func TestParseSLOLatencyLabelsAndP999(t *testing.T) {
	obj, err := ParseSLO(`shard0:terids_shard_resolve_seconds{shard=0}:p999<5s`)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Family != "terids_shard_resolve_seconds" || obj.FamilyLabels["shard"] != "0" {
		t.Fatalf("parsed %+v", obj)
	}
	if obj.Quantile != 0.999 {
		t.Fatalf("quantile = %v, want 0.999", obj.Quantile)
	}
}

func TestParseFamilyQuotedValues(t *testing.T) {
	cases := []struct {
		in     string
		name   string
		labels Labels
		err    bool
	}{
		{in: "fam", name: "fam", labels: nil},
		{in: "fam{shard=0}", name: "fam", labels: Labels{"shard": "0"}},
		{in: `fam{shard="0"}`, name: "fam", labels: Labels{"shard": "0"}},
		// The bug this guards against: a quoted value containing a comma
		// must stay one pair, not split into a bogus-pair error.
		{in: `fam{path="a,b"}`, name: "fam", labels: Labels{"path": "a,b"}},
		{in: `fam{path="a,b",shard=1}`, name: "fam", labels: Labels{"path": "a,b", "shard": "1"}},
		{in: `fam{a="x",b="y,z",c=3}`, name: "fam", labels: Labels{"a": "x", "b": "y,z", "c": "3"}},
		// Escaped quotes and backslashes inside a quoted value.
		{in: `fam{msg="say \"hi\""}`, name: "fam", labels: Labels{"msg": `say "hi"`}},
		{in: `fam{p="a\\b"}`, name: "fam", labels: Labels{"p": `a\b`}},
		// Braces inside quotes must not confuse the selector.
		{in: `fam{tpl="{x}"}`, name: "fam", labels: Labels{"tpl": "{x}"}},
		{in: `fam{v="unterminated}`, err: true},
		{in: `fam{v=str"ay}`, err: true},
		{in: `fam{=v}`, err: true},
		{in: `fam{novalue}`, err: true},
	}
	for _, tc := range cases {
		name, lbl, err := parseFamily(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("parseFamily(%q) = %q %v, want error", tc.in, name, lbl)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseFamily(%q): %v", tc.in, err)
			continue
		}
		if name != tc.name {
			t.Errorf("parseFamily(%q) name = %q, want %q", tc.in, name, tc.name)
		}
		if len(lbl) != len(tc.labels) {
			t.Errorf("parseFamily(%q) labels = %v, want %v", tc.in, lbl, tc.labels)
			continue
		}
		for k, want := range tc.labels {
			if lbl[k] != want {
				t.Errorf("parseFamily(%q) labels[%q] = %q, want %q", tc.in, k, lbl[k], want)
			}
		}
	}
}

func TestParseSLOQuotedLabelSpec(t *testing.T) {
	// End to end through ParseSLO: the comma inside the quoted value must
	// not be taken as a pair separator, and quoted ':' / '/' must not be
	// taken as spec structure.
	obj, err := ParseSLO(`paths:terids_impute_seconds{path="a,b",op=":/"}:p99<250ms`)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Family != "terids_impute_seconds" {
		t.Fatalf("family = %q", obj.Family)
	}
	if obj.FamilyLabels["path"] != "a,b" || obj.FamilyLabels["op"] != ":/" {
		t.Fatalf("labels = %v", obj.FamilyLabels)
	}
	if obj.Quantile != 0.99 || obj.BoundRaw != 250e6 {
		t.Fatalf("parsed %+v", obj)
	}
}

func TestParseSLORatio(t *testing.T) {
	obj, err := ParseSLO("errors:terids_rejected_total/terids_arrivals_total<0.01")
	if err != nil {
		t.Fatal(err)
	}
	if obj.kind != sloRatio || obj.ErrFamily != "terids_rejected_total" ||
		obj.TotalFamily != "terids_arrivals_total" || obj.Max != 0.01 {
		t.Fatalf("parsed %+v", obj)
	}
}

func TestParseSLOErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"nobound:fam:p99",
		":fam:p99<1ms",
		"x:fam<1ms",          // latency without quantile
		"x:fam:q99<1ms",      // bad quantile prefix
		"x:fam:p99<oops",     // bad duration
		"x:a/b<2",            // ratio bound out of range
		"x:a/b<0",            // ratio bound out of range
		"x:fam{open:p99<1ms", // unclosed selector
	} {
		if _, err := ParseSLO(spec); err == nil {
			t.Fatalf("spec %q parsed without error", spec)
		}
	}
}

func TestParseSLOFile(t *testing.T) {
	objs, err := ParseSLOFile("# objectives\n\ningest:lat:p99<10ms\nerrors:e/t<0.05\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 || objs[0].Name != "ingest" || objs[1].Name != "errors" {
		t.Fatalf("parsed %+v", objs)
	}
	if _, err := ParseSLOFile("good:lat:p99<10ms\nbad line\n"); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Fatalf("bad file error = %v", err)
	}
}

// TestSLOEngineBreachTransition drives a latency objective from ok to
// breach with deterministic ticks and asserts the verdict, the gauges,
// and the journal transition event — the acceptance path for /slo.
func TestSLOEngineBreachTransition(t *testing.T) {
	reg := NewRegistry()
	jr := NewJournal(16)
	h := reg.Histogram("lat", "", nil)

	obj, err := ParseSLO("ingest:lat:p99<1ms")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewSLOEngine(reg, jr, []Objective{obj}, time.Second, 10*time.Second, time.Minute)

	t0 := time.Unix(1700000000, 0)
	// Healthy traffic: everything far under the bound.
	for i := 0; i < 1000; i++ {
		h.Observe(100_000) // 100µs
	}
	eng.Tick(t0)
	st := eng.Status()
	if len(st) != 1 || st[0].State != "ok" {
		t.Fatalf("after healthy tick: %+v", st)
	}
	if jr.NextSeq() != 0 {
		t.Fatalf("no transition expected, journal has %d events", jr.NextSeq())
	}

	// Violation: a flood of observations far above the bound.
	for i := 0; i < 1000; i++ {
		h.Observe(50_000_000) // 50ms
	}
	eng.Tick(t0.Add(time.Second))
	st = eng.Status()
	if st[0].State != "breach" {
		t.Fatalf("after violation: %+v", st[0])
	}
	if st[0].BurnRateFast < 1 {
		t.Fatalf("burn rate fast = %v, want >= 1", st[0].BurnRateFast)
	}
	if st[0].Current <= 0.001 {
		t.Fatalf("current = %v s, want above the 1ms bound", st[0].Current)
	}
	if st[0].BudgetRemaining != 0 {
		t.Fatalf("budget remaining = %v, want 0", st[0].BudgetRemaining)
	}

	evs := jr.Snapshot()
	if len(evs) != 1 || evs[0].Type != "slo_transition" {
		t.Fatalf("journal = %+v, want one slo_transition", evs)
	}
	if evs[0].Fields["from"] != "ok" || evs[0].Fields["to"] != "breach" {
		t.Fatalf("transition fields = %+v", evs[0].Fields)
	}

	// Gauges surfaced in the registry.
	if g := reg.Gauge("terids_slo_state", "", Labels{"slo": "ingest"}); g.Value() != float64(SLOBreach) {
		t.Fatalf("terids_slo_state = %v", g.Value())
	}
	if g := reg.Gauge("terids_slo_burn_rate", "", Labels{"slo": "ingest", "window": "fast"}); g.Value() < 1 {
		t.Fatalf("terids_slo_burn_rate fast = %v", g.Value())
	}

	// Recovery: bound-respecting traffic ages the bad window out.
	for i := 0; i < 200_000; i++ {
		h.Observe(100_000)
	}
	eng.Tick(t0.Add(11 * time.Second)) // past the fast window
	st = eng.Status()
	if st[0].State == "breach" {
		t.Fatalf("after recovery: %+v", st[0])
	}
	if jr.NextSeq() != 2 {
		t.Fatalf("want a second transition event, journal has %d", jr.NextSeq())
	}
}

func TestSLOEngineRatioObjective(t *testing.T) {
	reg := NewRegistry()
	jr := NewJournal(16)
	errs := reg.Counter("rej_total", "", nil)
	total := reg.Counter("arr_total", "", nil)

	obj, err := ParseSLO("errors:rej_total/arr_total<0.01")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewSLOEngine(reg, jr, []Objective{obj}, time.Second, 10*time.Second, time.Minute)

	t0 := time.Unix(1700000000, 0)
	total.Add(10_000)
	errs.Add(10) // 0.1% — within budget
	eng.Tick(t0)
	if st := eng.Status(); st[0].State != "ok" || st[0].Kind != "ratio" {
		t.Fatalf("healthy: %+v", st[0])
	}

	total.Add(1000)
	errs.Add(500) // window ratio 50% >> 1%
	eng.Tick(t0.Add(time.Second))
	st := eng.Status()
	if st[0].State != "breach" {
		t.Fatalf("violated: %+v", st[0])
	}
	if st[0].Current < 0.3 {
		t.Fatalf("current ratio = %v, want ~0.5", st[0].Current)
	}
}

// TestSLOEngineLateBinding: objectives naming not-yet-registered families
// stay quietly ok and bind once the family appears.
func TestSLOEngineLateBinding(t *testing.T) {
	reg := NewRegistry()
	obj, err := ParseSLO("later:future_seconds:p99<1ms")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewSLOEngine(reg, NewJournal(4), []Objective{obj}, time.Second, 10*time.Second, time.Minute)
	t0 := time.Unix(1700000000, 0)
	eng.Tick(t0)
	if st := eng.Status(); st[0].State != "ok" {
		t.Fatalf("unbound objective should be ok: %+v", st[0])
	}
	h := reg.Histogram("future_seconds", "", nil)
	for i := 0; i < 100; i++ {
		h.Observe(10_000_000)
	}
	eng.Tick(t0.Add(time.Second))
	if st := eng.Status(); st[0].State != "breach" {
		t.Fatalf("bound objective should evaluate: %+v", st[0])
	}
}

func TestSLOEngineRunStop(t *testing.T) {
	reg := NewRegistry()
	obj, _ := ParseSLO("x:lat:p99<1ms")
	eng := NewSLOEngine(reg, NewJournal(4), []Objective{obj}, 10*time.Millisecond, time.Second, time.Minute)
	eng.Run()
	time.Sleep(50 * time.Millisecond)
	eng.Stop()
	if eng.Objectives() != 1 {
		t.Fatal("objective count")
	}
}
