package obs

import (
	"math"
	"testing"
)

// relErr is |got-want|/want.
func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}

// TestHistogramQuantileInterpolationUniform pins the within-bucket linear
// interpolation error on a uniform distribution. With log2 buckets a
// uniform density is exactly what interpolation assumes, so mid-range
// quantiles land nearly on target; the tail quantile only drifts where
// the distribution's max cuts a bucket short. These bounds are the
// contract /slo verdicts depend on — if a bucket-layout change widens
// them, this test fails before the SLO engine starts lying.
func TestHistogramQuantileInterpolationUniform(t *testing.T) {
	r := NewRegistry()
	h := r.SizeHistogram("uni", "", nil)
	const n = 1_000_000
	for i := 0; i < n; i++ {
		h.Observe(int64(i))
	}
	p50 := h.Quantile(0.50)
	if e := relErr(p50, 0.50*n); e > 0.02 {
		t.Fatalf("uniform p50 = %.0f, want ~%d (rel err %.3f > 0.02)", p50, n/2, e)
	}
	p99 := h.Quantile(0.99)
	if e := relErr(p99, 0.99*n); e > 0.10 {
		t.Fatalf("uniform p99 = %.0f, want ~%.0f (rel err %.3f > 0.10)", p99, 0.99*n, e)
	}
	// Both estimates must stay inside the log2 bucket holding the true
	// quantile — the hard guarantee interpolation cannot break.
	if bucketOf(int64(p50)) != bucketOf(n/2) {
		t.Fatalf("p50 estimate %.0f escaped the true quantile's bucket", p50)
	}
	if bucketOf(int64(p99)) != bucketOf(int64(0.99*n)) {
		t.Fatalf("p99 estimate %.0f escaped the true quantile's bucket", p99)
	}
}

// TestHistogramQuantileInterpolationBimodal pins the worst-case shape for
// log2 interpolation: point masses far apart, where a spike sits at the
// low edge of a wide bucket and interpolation can only promise the right
// bucket, not the exact point.
func TestHistogramQuantileInterpolationBimodal(t *testing.T) {
	r := NewRegistry()
	h := r.SizeHistogram("bi", "", nil)
	const lo, hi, n = 1000, 100_000, 10_000
	for i := 0; i < n; i++ {
		h.Observe(lo)
		h.Observe(hi)
	}
	// True p50 is the low mode; the estimate may reach its bucket's upper
	// bound (1024 for a spike at 1000) but no further.
	p50 := h.Quantile(0.50)
	if e := relErr(p50, lo); e > 0.05 {
		t.Fatalf("bimodal p50 = %.0f, want ~%d (rel err %.3f > 0.05)", p50, lo, e)
	}
	// True p99 is the high mode at 100000, low in its (65536,131072]
	// bucket; within-bucket uniformity overestimates. Pin the bound so it
	// can only shrink.
	p99 := h.Quantile(0.99)
	if e := relErr(p99, hi); e > 0.35 {
		t.Fatalf("bimodal p99 = %.0f, want ~%d (rel err %.3f > 0.35)", p99, hi, e)
	}
	if bucketOf(int64(p50)) != bucketOf(lo) {
		t.Fatalf("p50 estimate %.0f escaped the true quantile's bucket", p50)
	}
	if bucketOf(int64(p99)) != bucketOf(hi) {
		t.Fatalf("p99 estimate %.0f escaped the true quantile's bucket", p99)
	}
}

func TestHistSnapshotSubAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", nil)
	for i := 0; i < 1000; i++ {
		h.Observe(1000) // 1µs era
	}
	before := h.Snapshot()
	for i := 0; i < 1000; i++ {
		h.Observe(1_000_000) // 1ms era
	}
	after := h.Snapshot()

	win := after.Sub(before)
	if win.Count != 1000 {
		t.Fatalf("window count = %d, want 1000", win.Count)
	}
	// The window contains only 1ms observations; cumulative view is 50/50.
	if q := win.Quantile(0.50); relErr(q, 1_000_000) > 0.5 {
		t.Fatalf("window p50 = %.0f, want ~1e6", q)
	}
	if q := after.Quantile(0.50); q > 2000 {
		t.Fatalf("cumulative p50 = %.0f, want low mode", q)
	}
	if win.Scale != 1e9 {
		t.Fatalf("scale not propagated: %v", win.Scale)
	}
	if win.Sum != 1000*1_000_000 {
		t.Fatalf("window sum = %d", win.Sum)
	}
}

func TestHistSnapshotFractionAbove(t *testing.T) {
	r := NewRegistry()
	h := r.SizeHistogram("fa", "", nil)
	const n = 100_000
	for i := 0; i < n; i++ {
		h.Observe(int64(i))
	}
	s := h.Snapshot()
	for _, tc := range []struct {
		bound, want, tol float64
	}{
		{0, 1.0, 0.02},
		// Bucket-boundary bounds count exactly (no interpolation).
		{65_536, 0.34464, 0.01},
		{32_768, 0.67232, 0.01},
		// Mid-bucket bounds interpolate; the distribution's max cuts the
		// last bucket short, so the estimate is only bucket-accurate.
		{50_000, 0.5, 0.05},
		{90_000, 0.1, 0.15},
		{200_000, 0.0, 0.001},
	} {
		got := s.FractionAbove(tc.bound)
		if math.Abs(got-tc.want) > tc.tol {
			t.Fatalf("FractionAbove(%.0f) = %.4f, want %.2f ± %.3f", tc.bound, got, tc.want, tc.tol)
		}
	}
	var empty HistSnapshot
	if empty.FractionAbove(10) != 0 {
		t.Fatal("empty snapshot should report 0")
	}
}

func TestRegistryFindLookups(t *testing.T) {
	r := NewRegistry()
	if r.FindHistogram("nope", nil) != nil || r.FindCounter("nope", nil) != nil {
		t.Fatal("lookup of unregistered family must return nil")
	}
	h := r.Histogram("h", "", Labels{"shard": "0"})
	c := r.Counter("c", "", nil)
	if r.FindHistogram("h", Labels{"shard": "0"}) != h {
		t.Fatal("FindHistogram missed registered series")
	}
	if r.FindHistogram("h", Labels{"shard": "1"}) != nil {
		t.Fatal("FindHistogram must not match a different label set")
	}
	if r.FindCounter("c", nil) != c {
		t.Fatal("FindCounter missed registered series")
	}
	// Type mismatch returns nil instead of panicking.
	if r.FindCounter("h", Labels{"shard": "0"}) != nil {
		t.Fatal("FindCounter must not return a histogram")
	}
	if r.FindHistogram("c", nil) != nil {
		t.Fatal("FindHistogram must not return a counter")
	}
}
