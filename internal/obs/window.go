// Windowed histogram statistics for the SLO engine. Histograms are
// cumulative since process start, but objectives are judged over sliding
// windows ("p99 over the last 5 minutes"). The bridge is HistSnapshot: a
// cheap copy of a histogram's bucket vector taken periodically, where the
// difference of two cumulative snapshots is exactly the distribution of
// the observations that landed between them. Quantile and FractionAbove
// then answer window-scoped questions with the same within-bucket linear
// interpolation the live histogram uses, so /slo and /metrics never
// disagree about what a p99 means.

package obs

import "math"

// HistSnapshot is a point-in-time copy of a histogram's state. Snapshots
// of the same histogram may be subtracted to obtain the distribution over
// the interval between them.
type HistSnapshot struct {
	// Buckets holds cumulative-since-start per-bucket counts (same log2
	// layout as Histogram).
	Buckets [histBuckets]uint64
	// Count is the total number of observations.
	Count uint64
	// Sum is the sum of raw observations.
	Sum int64
	// Scale divides raw units for human-facing rendering (1e9 for
	// nanosecond latencies exposed as seconds).
	Scale float64
}

// Snapshot copies the histogram's current state. Buckets are read without
// a global lock, so a snapshot taken during concurrent Observe calls may
// be off by the in-flight observations — irrelevant at window granularity.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := 0; i < histBuckets; i++ {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Scale = h.scale
	return s
}

// Sub returns the distribution of observations recorded after old and up
// to s (both snapshots of the same histogram, s taken later). Torn reads
// can make individual deltas transiently negative; those clamp to zero.
func (s HistSnapshot) Sub(old HistSnapshot) HistSnapshot {
	out := HistSnapshot{Scale: s.Scale}
	var total uint64
	for i := 0; i < histBuckets; i++ {
		if s.Buckets[i] > old.Buckets[i] {
			out.Buckets[i] = s.Buckets[i] - old.Buckets[i]
		}
		total += out.Buckets[i]
	}
	out.Count = total
	if s.Sum > old.Sum {
		out.Sum = s.Sum - old.Sum
	}
	return out
}

// Quantile extracts quantile q in (0,1] in raw units, linearly
// interpolated within the winning bucket — the snapshot analogue of
// Histogram.Quantile. Zero observations yield zero.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		n := s.Buckets[i]
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = float64(uint64(1) << (histMinShift + i - 1))
			}
			hi := bucketBound(i)
			if math.IsInf(hi, 1) {
				return lo
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return bucketBound(histBuckets - 2)
}

// FractionAbove estimates the fraction of observations strictly above
// bound (raw units), interpolating within the bucket the bound falls in.
// Zero observations yield zero.
func (s HistSnapshot) FractionAbove(bound float64) float64 {
	if s.Count == 0 || bound < 0 {
		return 0
	}
	var above float64
	for i := 0; i < histBuckets; i++ {
		n := s.Buckets[i]
		if n == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = float64(uint64(1) << (histMinShift + i - 1))
		}
		hi := bucketBound(i)
		switch {
		case bound >= hi:
			// Entire bucket at or below the bound.
		case bound <= lo:
			above += float64(n)
		default:
			// Bound splits this bucket; assume uniform spread within it.
			above += float64(n) * (hi - bound) / (hi - lo)
		}
	}
	return above / float64(s.Count)
}

// FindHistogram returns the histogram registered under (name, labels), or
// nil when the family or series does not exist yet. Unlike Histogram it
// never creates and never panics on a type mismatch — the SLO engine
// resolves objective targets late, because instrument families appear as
// subsystems start.
func (r *Registry) FindHistogram(name string, labels Labels) *Histogram {
	if inst := r.find(name, labels); inst != nil {
		if h, ok := inst.(*Histogram); ok {
			return h
		}
	}
	return nil
}

// FindCounter returns the counter registered under (name, labels), or nil
// when absent or of a different type.
func (r *Registry) FindCounter(name string, labels Labels) *Counter {
	if inst := r.find(name, labels); inst != nil {
		if c, ok := inst.(*Counter); ok {
			return c
		}
	}
	return nil
}

func (r *Registry) find(name string, labels Labels) instrument {
	lbl := labels.render()
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.families[name]
	if !ok {
		return nil
	}
	return f.byLbl[lbl]
}
