// Package obs is the engine's observability subsystem: lock-cheap runtime
// instruments — atomic counters, gauges, and log-bucketed latency
// histograms with quantile extraction — registered in a process-wide
// registry and exported in the Prometheus text exposition format.
//
// The package is dependency-free by design (standard library only): the
// instruments live on the per-arrival hot path, where a full metrics
// client's label hashing and interface indirection would cost more than the
// work being measured. Every instrument is a few atomics:
//
//   - Counter: one atomic.Int64.
//   - Gauge: one atomic float64 (bit-cast).
//   - Histogram: a fixed array of power-of-two buckets plus count and sum —
//     Observe is a bit-length computation and two atomic adds, no locks, no
//     allocation. Quantiles (p50/p95/p99) are extracted at read time by
//     scanning the cumulative bucket counts.
//
// Instruments are obtained with get-or-create semantics: asking the
// registry for an existing (name, labels) pair returns the same instrument,
// so independent subsystems (several engines, WALs, checkpointer instances
// in one process) publish into shared series exactly as a Prometheus client
// would. The exposition handler writes families sorted by name, buckets in
// ascending le order, which keeps the output deterministic and diffable.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 buckets per histogram. Bucket i counts
// observations with value <= 1<<(histMinShift+i) (in the histogram's raw
// unit, nanoseconds for latencies); the last bucket is the overflow.
// 2^8 ns = 256ns up to 2^(8+30) ns ≈ 274s spans everything from a channel
// hop to a full checkpoint fsync.
const (
	histBuckets  = 31
	histMinShift = 8
)

// Labels is one metric's label set. Rendered sorted by key, so the same set
// always names the same series.
type Labels map[string]string

func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	return b.String()
}

// instrument is anything the registry can expose.
type instrument interface {
	// labelStr is the rendered constant label set (may be empty).
	labelStr() string
	// sample appends the instrument's exposition lines for family name.
	sample(b *strings.Builder, name string)
}

// family groups all instruments sharing one metric name: same type, same
// help, different label sets.
type family struct {
	name  string
	help  string
	typ   string // counter | gauge | histogram
	insts []instrument
	byLbl map[string]instrument
}

// Registry holds a process's instruments. The zero value is not usable; use
// NewRegistry or the process-wide Default.
type Registry struct {
	mu         sync.RWMutex
	families   map[string]*family
	collectors []func(*Emit)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry every subsystem publishes into
// unless explicitly pointed elsewhere.
func Default() *Registry { return defaultRegistry }

// getOrCreate returns the instrument registered under (name, labels),
// creating it with mk when absent. A name registered under a different
// metric type is a programming error and panics.
func (r *Registry) getOrCreate(name, help, typ string, labels Labels, mk func(lbl string) instrument) instrument {
	lbl := labels.render()
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byLbl: make(map[string]instrument)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	if inst, ok := f.byLbl[lbl]; ok {
		return inst
	}
	inst := mk(lbl)
	f.byLbl[lbl] = inst
	f.insts = append(f.insts, inst)
	sort.Slice(f.insts, func(i, j int) bool { return f.insts[i].labelStr() < f.insts[j].labelStr() })
	return inst
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	lbl string
	v   atomic.Int64
}

// Inc adds one.
//
//terids:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotonic).
//
//terids:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) labelStr() string { return c.lbl }

func (c *Counter) sample(b *strings.Builder, name string) {
	writeSample(b, name, "", c.lbl, float64(c.v.Load()))
}

// Counter returns the counter registered under name (creating it when
// absent).
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.getOrCreate(name, help, "counter", labels, func(lbl string) instrument {
		return &Counter{lbl: lbl}
	}).(*Counter)
}

// Gauge is an atomic float64 gauge.
type Gauge struct {
	lbl string
	v   atomic.Uint64 // float64 bits
}

// Set stores v.
//
//terids:hotpath
func (g *Gauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Add adds d (CAS loop).
//
//terids:hotpath
func (g *Gauge) Add(d float64) {
	for {
		old := g.v.Load()
		if g.v.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

func (g *Gauge) labelStr() string { return g.lbl }

func (g *Gauge) sample(b *strings.Builder, name string) {
	writeSample(b, name, "", g.lbl, g.Value())
}

// Gauge returns the gauge registered under name (creating it when absent).
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.getOrCreate(name, help, "gauge", labels, func(lbl string) instrument {
		return &Gauge{lbl: lbl}
	}).(*Gauge)
}

// gaugeFunc is a read-time callback gauge.
type gaugeFunc struct {
	lbl string
	fn  func() float64
}

func (g *gaugeFunc) labelStr() string { return g.lbl }

func (g *gaugeFunc) sample(b *strings.Builder, name string) {
	writeSample(b, name, "", g.lbl, g.fn())
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// Re-registering the same (name, labels) replaces the callback.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	inst := r.getOrCreate(name, help, "gauge", labels, func(lbl string) instrument {
		return &gaugeFunc{lbl: lbl, fn: fn}
	})
	if gf, ok := inst.(*gaugeFunc); ok {
		gf.fn = fn
	}
}

// Histogram is a lock-free log2-bucketed histogram of non-negative int64
// observations (nanoseconds for latencies, bytes for sizes). scale divides
// raw values for exposition: 1e9 renders nanoseconds as seconds, 1 leaves
// counts/bytes as-is.
type Histogram struct {
	lbl     string
	scale   float64
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
}

// bucketOf maps a raw value to its bucket index.
func bucketOf(v int64) int {
	if v <= 1<<histMinShift {
		return 0
	}
	// Smallest i with v <= 1<<(histMinShift+i).
	i := bits.Len64(uint64(v)-1) - histMinShift
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketBound is bucket i's inclusive upper bound in raw units; the last
// bucket is unbounded (+Inf).
func bucketBound(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1) << (histMinShift + i))
}

// Observe records one raw-unit value. Negative values clamp to zero.
//
//terids:hotpath
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed nanoseconds since start.
//
//terids:hotpath
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// ObserveDuration records a duration in nanoseconds.
//
//terids:hotpath
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of raw observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile extracts quantile q in (0,1] from the bucket counts, linearly
// interpolated within the winning bucket, in raw units. Zero observations
// yield zero.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = float64(uint64(1) << (histMinShift + i - 1))
			}
			hi := bucketBound(i)
			if math.IsInf(hi, 1) {
				// Open-ended overflow bucket: report its lower bound.
				return lo
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return bucketBound(histBuckets - 2) // unreachable in practice
}

func (h *Histogram) labelStr() string { return h.lbl }

func (h *Histogram) sample(b *strings.Builder, name string) {
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if bound := bucketBound(i); !math.IsInf(bound, 1) {
			le = formatFloat(bound / h.scale)
		}
		lbl := fmt.Sprintf("le=%q", le)
		if h.lbl != "" {
			lbl = h.lbl + "," + lbl
		}
		writeSample(b, name, "_bucket", lbl, float64(cum))
	}
	// The last log2 bucket is the overflow, so cum == count and the +Inf
	// line above already closed the histogram.
	writeSample(b, name, "_sum", h.lbl, float64(h.sum.Load())/h.scale)
	writeSample(b, name, "_count", h.lbl, float64(h.count.Load()))
}

// quantiles every histogram additionally exports as a read-time gauge
// family (<name>_q{q="0.50"}), scaled like the histogram itself.
var quantiles = []struct {
	q    float64
	name string
}{{0.5, "0.50"}, {0.95, "0.95"}, {0.99, "0.99"}}

// Histogram returns the latency histogram registered under name (creating
// it when absent), rendering nanosecond observations as seconds.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	return r.histogram(name, help, labels, 1e9)
}

// SizeHistogram returns a histogram of raw magnitudes (bytes, entries)
// exposed unscaled.
func (r *Registry) SizeHistogram(name, help string, labels Labels) *Histogram {
	return r.histogram(name, help, labels, 1)
}

func (r *Registry) histogram(name, help string, labels Labels, scale float64) *Histogram {
	return r.getOrCreate(name, help, "histogram", labels, func(lbl string) instrument {
		return &Histogram{lbl: lbl, scale: scale}
	}).(*Histogram)
}

// Emit buffers collector output during one exposition pass.
type Emit struct {
	lines map[string]*famOut
}

type famOut struct {
	help string
	typ  string
	out  []string
}

func (e *Emit) add(name, help, typ, lbl string, v float64) {
	f, ok := e.lines[name]
	if !ok {
		f = &famOut{help: help, typ: typ}
		e.lines[name] = f
	}
	var b strings.Builder
	writeSample(&b, name, "", lbl, v)
	f.out = append(f.out, b.String())
}

// Gauge emits one gauge sample from a collector.
func (e *Emit) Gauge(name, help string, labels Labels, v float64) {
	e.add(name, help, "gauge", labels.render(), v)
}

// Counter emits one counter sample from a collector.
func (e *Emit) Counter(name, help string, labels Labels, v float64) {
	e.add(name, help, "counter", labels.render(), v)
}

// Collect registers a scrape-time callback that can emit dynamic, labeled
// samples (per-shard series whose cardinality changes at runtime).
func (r *Registry) Collect(fn func(*Emit)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// writeSample renders one exposition line: name[suffix]{labels} value.
func writeSample(b *strings.Builder, name, suffix, lbl string, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if lbl != "" {
		b.WriteByte('{')
		b.WriteString(lbl)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// formatFloat renders a float the way Prometheus clients do: integers
// without a decimal point, everything else in shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
