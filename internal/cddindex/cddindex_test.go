package cddindex

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"terids/internal/pivot"
	"terids/internal/rules"
	"terids/internal/tokens"
	"terids/internal/tuple"
)

var schema = tuple.MustSchema("Gender", "Symptom", "Diagnosis", "Treatment")

func sel4() *pivot.Selection {
	mk := func(attr int, text string) pivot.AttrPivots {
		return pivot.AttrPivots{
			Attr:  attr,
			Texts: []string{text},
			Toks:  []tokens.Set{tokens.Tokenize(text)},
		}
	}
	return &pivot.Selection{PerAttr: []pivot.AttrPivots{
		mk(0, "male"),
		mk(1, "fever cough"),
		mk(2, "flu"),
		mk(3, "rest fluids"),
	}}
}

// ruleSetFixture builds a mixed set: gender-conditioned CDDs with varying
// constants, plain DDs, and editing rules — all with Diagnosis dependent.
func ruleSetFixture(t *testing.T) *rules.Set {
	t.Helper()
	set := rules.NewSet(4)
	for i, gender := range []string{"male", "female"} {
		for band := 0; band < 3; band++ {
			set.MustAdd(&rules.Rule{
				Kind: rules.KindCDD, Dependent: 2,
				Determinants: []rules.Constraint{
					{Attr: 0, Kind: rules.Const, Value: gender, Toks: tokens.New(gender)},
					{Attr: 1, Kind: rules.Interval, Min: float64(band) * 0.1, Max: float64(band+1) * 0.1},
				},
				DepMin: 0, DepMax: 0.1 + 0.1*float64(i),
			})
		}
	}
	set.MustAdd(&rules.Rule{
		Kind: rules.KindDD, Dependent: 2,
		Determinants: []rules.Constraint{
			{Attr: 1, Kind: rules.Interval, Min: 0, Max: 0.3},
		},
		DepMin: 0, DepMax: 0.4,
	})
	set.MustAdd(&rules.Rule{
		Kind: rules.KindEditing, Dependent: 2,
		Determinants: []rules.Constraint{
			{Attr: 3, Kind: rules.Const, Value: "rest fluids", Toks: tokens.New("rest", "fluids")},
		},
		DepMin: 0, DepMax: 0.1,
	})
	// A rule for another dependent, which must NOT be indexed.
	set.MustAdd(&rules.Rule{
		Kind: rules.KindDD, Dependent: 3,
		Determinants: []rules.Constraint{
			{Attr: 2, Kind: rules.Interval, Min: 0, Max: 0.2},
		},
		DepMin: 0, DepMax: 0.3,
	})
	return set
}

func TestBuildAndShape(t *testing.T) {
	set := ruleSetFixture(t)
	ix, err := Build(set, 2, sel4())
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 8 {
		t.Fatalf("indexed %d rules, want 8 (dependent=2 only)", ix.Len())
	}
	// Lattice: {Gender(c), Symptom(i)}, {Symptom(i)}, {Treatment(c)}.
	if ix.Groups() != 3 {
		t.Fatalf("Groups = %d, want 3", ix.Groups())
	}
	if _, err := Build(set, 99, sel4()); err == nil {
		t.Fatal("out-of-range dependent must fail")
	}
}

func TestApplicableMatchesLinearFilter(t *testing.T) {
	set := ruleSetFixture(t)
	ix, err := Build(set, 2, sel4())
	if err != nil {
		t.Fatal(err)
	}
	queries := []*tuple.Record{
		tuple.MustRecord(schema, "q1", 0, 0, []string{"male", "fever cough", "-", "rest fluids"}),
		tuple.MustRecord(schema, "q2", 0, 0, []string{"female", "thirst vision", "-", "other care"}),
		tuple.MustRecord(schema, "q3", 0, 0, []string{"-", "fever cough", "-", "rest fluids"}),
		tuple.MustRecord(schema, "q4", 0, 0, []string{"male", "-", "-", "-"}),
	}
	for _, q := range queries {
		want := map[int]bool{}
		for _, r := range set.ForDependent(2) {
			if r.AppliesTo(q) {
				want[r.ID] = true
			}
		}
		got := map[int]bool{}
		ix.Applicable(q, func(r *rules.Rule) bool {
			got[r.ID] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("query %s: got %d rules, want %d", q.RID, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("query %s: missing rule %d", q.RID, id)
			}
		}
	}
}

func TestApplicableSkipsGroupsWithMissingDeterminants(t *testing.T) {
	set := ruleSetFixture(t)
	ix, _ := Build(set, 2, sel4())
	// Gender missing: the conditioned group is unusable.
	q := tuple.MustRecord(schema, "q", 0, 0, []string{"-", "fever cough", "-", "rest fluids"})
	stats := ix.Applicable(q, func(*rules.Rule) bool { return true })
	if stats.GroupsSkipped == 0 {
		t.Fatal("expected the gender-conditioned group to be skipped")
	}
}

func TestApplicablePrunesConstants(t *testing.T) {
	// Many rules with distinct constants at varying distances from the
	// pivot: a query matching one constant must verify far fewer rules
	// than exist. Constants share a sliding window of the pivot
	// vocabulary so their converted coordinates spread over [0,1] (pivot
	// conversion cannot separate constants that are all disjoint from the
	// pivot — that degenerate case is covered by the linear-equivalence
	// tests).
	pivotText := "rest fluids sleep water soup tea honey lemon"
	pivotToks := tokens.Tokenize(pivotText)
	sel := sel4()
	sel.PerAttr[3] = pivot.AttrPivots{Attr: 3, Texts: []string{pivotText}, Toks: []tokens.Set{pivotToks}}
	set := rules.NewSet(4)
	for i := 0; i < 60; i++ {
		// Take i%7 tokens from the pivot plus one unique token.
		v := fmt.Sprintf("unique%d", i)
		for k := 0; k <= i%7; k++ {
			v += " " + pivotToks[k]
		}
		set.MustAdd(&rules.Rule{
			Kind: rules.KindCDD, Dependent: 2,
			Determinants: []rules.Constraint{
				{Attr: 3, Kind: rules.Const, Value: v, Toks: tokens.Tokenize(v)},
			},
			DepMin: 0, DepMax: 0.2,
		})
	}
	ix, err := Build(set, 2, sel)
	if err != nil {
		t.Fatal(err)
	}
	qTreat := set.All()[7].Determinants[0].Value
	q := tuple.MustRecord(schema, "q", 0, 0, []string{"male", "fever", "-", qTreat})
	var got []*rules.Rule
	stats := ix.Applicable(q, func(r *rules.Rule) bool {
		got = append(got, r)
		return true
	})
	if len(got) != 1 {
		t.Fatalf("got %d rules, want 1", len(got))
	}
	if stats.Verified >= 60 {
		t.Fatalf("verified %d of 60 rules; constant pruning ineffective", stats.Verified)
	}
}

func TestApplicableEarlyStop(t *testing.T) {
	set := ruleSetFixture(t)
	ix, _ := Build(set, 2, sel4())
	q := tuple.MustRecord(schema, "q", 0, 0, []string{"male", "fever cough", "-", "rest fluids"})
	n := 0
	ix.Applicable(q, func(*rules.Rule) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early stop visited %d rules, want 1", n)
	}
}

func TestDepBound(t *testing.T) {
	set := ruleSetFixture(t)
	ix, _ := Build(set, 2, sel4())
	q := tuple.MustRecord(schema, "q", 0, 0, []string{"male", "fever cough", "-", "rest fluids"})
	b := ix.DepBound(q)
	if b.IsEmpty() {
		t.Fatal("DepBound must not be empty for a query with usable groups")
	}
	if b.Lo != 0 || b.Hi < 0.4 {
		t.Fatalf("DepBound = %+v; must cover all usable rules' intervals", b)
	}
	// All determinants missing: no usable group.
	empty := tuple.MustRecord(schema, "q2", 0, 0, []string{"-", "-", "-", "-"})
	if got := ix.DepBound(empty); !got.IsEmpty() {
		t.Fatalf("DepBound with no usable groups = %+v, want empty", got)
	}
}

func TestEmptyIndex(t *testing.T) {
	set := rules.NewSet(4)
	ix, err := Build(set, 2, sel4())
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 0 || ix.Groups() != 0 {
		t.Fatal("empty set must build an empty index")
	}
	q := tuple.MustRecord(schema, "q", 0, 0, []string{"male", "fever", "-", "x"})
	stats := ix.Applicable(q, func(*rules.Rule) bool {
		t.Fatal("no rules to visit")
		return true
	})
	if stats.GroupsVisited != 0 {
		t.Fatal("no groups to visit")
	}
}

func TestApplicableRandomizedAgainstLinear(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	set := rules.NewSet(4)
	words := []string{"alpha", "beta", "gamma", "delta", "male", "female"}
	randToksText := func() string {
		n := 1 + r.Intn(3)
		s := ""
		for i := 0; i < n; i++ {
			s += words[r.Intn(len(words))] + " "
		}
		return s
	}
	for i := 0; i < 120; i++ {
		dets := []rules.Constraint{}
		used := map[int]bool{2: true}
		nDet := 1 + r.Intn(2)
		for k := 0; k < nDet; k++ {
			attr := r.Intn(4)
			if used[attr] {
				continue
			}
			used[attr] = true
			if r.Intn(2) == 0 {
				v := randToksText()
				dets = append(dets, rules.Constraint{Attr: attr, Kind: rules.Const, Value: v, Toks: tokens.Tokenize(v)})
			} else {
				lo := r.Float64() * 0.5
				dets = append(dets, rules.Constraint{Attr: attr, Kind: rules.Interval, Min: lo, Max: lo + r.Float64()*0.5})
			}
		}
		if len(dets) == 0 {
			continue
		}
		set.MustAdd(&rules.Rule{
			Kind: rules.KindCDD, Dependent: 2, Determinants: dets,
			DepMin: 0, DepMax: r.Float64(),
		})
	}
	ix, err := Build(set, 2, sel4())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 60; trial++ {
		vals := make([]string, 4)
		for x := 0; x < 4; x++ {
			if x == 2 || r.Intn(4) == 0 {
				vals[x] = "-"
			} else {
				vals[x] = randToksText()
			}
		}
		q := tuple.MustRecord(schema, fmt.Sprintf("q%d", trial), 0, 0, vals)
		var want, got []int
		for _, rl := range set.ForDependent(2) {
			if rl.AppliesTo(q) {
				want = append(want, rl.ID)
			}
		}
		ix.Applicable(q, func(rl *rules.Rule) bool {
			got = append(got, rl.ID)
			return true
		})
		sort.Ints(want)
		sort.Ints(got)
		if fmt.Sprint(want) != fmt.Sprint(got) {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
	}
}
