// Package cddindex implements the CDD-index I_j of Section 5.1: for each
// dependent attribute A_j, rules of the form X_f → A_j are organized in a
// lattice of determinant signatures; each lattice node holds an aR-tree
// over the rules' constraint geometry (constants converted to pivot
// distances, intervals indexed as boxes). Given an incomplete tuple, the
// index returns the applicable rules while pruning whole groups whose
// constant constraints cannot match.
package cddindex

import (
	"fmt"
	"sort"
	"strings"

	"terids/internal/agg"
	"terids/internal/artree"
	"terids/internal/pivot"
	"terids/internal/rules"
	"terids/internal/tokens"
	"terids/internal/tuple"
)

// ruleAgg is the aggregate of Section 5.1's CDD-index: the minimal interval
// bounding the dependent intervals A_j.I of all rules below a node, plus
// intervals bounding the constants' auxiliary-pivot distances.
type ruleAgg struct {
	depI agg.Interval
	// auxConst[i][a-1] bounds dist(constant, piv_a) for const dim i.
	auxConst [][]agg.Interval
}

type ruleMerger struct {
	nConst int
	nAux   int
}

func (m ruleMerger) Zero() any {
	z := &ruleAgg{depI: agg.EmptyInterval(), auxConst: make([][]agg.Interval, m.nConst)}
	for i := range z.auxConst {
		z.auxConst[i] = make([]agg.Interval, m.nAux)
		for a := range z.auxConst[i] {
			z.auxConst[i][a] = agg.EmptyInterval()
		}
	}
	return z
}

func (m ruleMerger) Add(acc, aggr any) any {
	a := acc.(*ruleAgg)
	o := aggr.(*ruleAgg)
	a.depI.ExtendInterval(o.depI)
	for i := range a.auxConst {
		for x := range a.auxConst[i] {
			a.auxConst[i][x].ExtendInterval(o.auxConst[i][x])
		}
	}
	return a
}

// group is one lattice node: all rules sharing a determinant signature
// (the ordered list of (attr, kind) pairs).
type group struct {
	sig           string
	constAttrs    []int // attrs with Const constraints, ascending
	intervalAttrs []int // attrs with Interval constraints, ascending
	tree          *artree.Tree
	rules         []*rules.Rule
}

// Index is the CDD-index for one dependent attribute.
type Index struct {
	dep    int
	sel    *pivot.Selection
	groups map[string]*group
	order  []string // deterministic group iteration
	nRules int
}

// Build indexes all rules with dependent attribute dep from set.
func Build(set *rules.Set, dep int, sel *pivot.Selection) (*Index, error) {
	if dep < 0 || dep >= set.D() {
		return nil, fmt.Errorf("cddindex: dependent %d out of range [0,%d)", dep, set.D())
	}
	ix := &Index{dep: dep, sel: sel, groups: make(map[string]*group)}
	for _, r := range set.ForDependent(dep) {
		ix.insert(r)
	}
	sort.Strings(ix.order)
	return ix, nil
}

// signature builds the lattice key of a rule's determinant set.
func signature(r *rules.Rule) (sig string, constAttrs, intervalAttrs []int) {
	type det struct {
		attr int
		kind rules.ConstraintKind
	}
	dets := make([]det, 0, len(r.Determinants))
	for _, c := range r.Determinants {
		dets = append(dets, det{c.Attr, c.Kind})
	}
	sort.Slice(dets, func(i, j int) bool { return dets[i].attr < dets[j].attr })
	var b strings.Builder
	for _, d := range dets {
		if d.kind == rules.Const {
			fmt.Fprintf(&b, "c%d|", d.attr)
			constAttrs = append(constAttrs, d.attr)
		} else {
			fmt.Fprintf(&b, "i%d|", d.attr)
			intervalAttrs = append(intervalAttrs, d.attr)
		}
	}
	return b.String(), constAttrs, intervalAttrs
}

func (ix *Index) insert(r *rules.Rule) {
	sig, constAttrs, intervalAttrs := signature(r)
	g, ok := ix.groups[sig]
	if !ok {
		dims := len(constAttrs) + len(intervalAttrs)
		g = &group{
			sig:           sig,
			constAttrs:    constAttrs,
			intervalAttrs: intervalAttrs,
			tree: artree.New(dims, ruleMerger{
				nConst: len(constAttrs),
				nAux:   ix.maxAux(),
			}),
		}
		ix.groups[sig] = g
		ix.order = append(ix.order, sig)
	}
	// Geometry: const dims are points at the converted constant; interval
	// dims are the [Min, Max] boxes.
	dims := len(g.constAttrs) + len(g.intervalAttrs)
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	a := ix.aggOf(r, g)
	for i, attr := range g.constAttrs {
		c := findConstraint(r, attr)
		cc := ix.sel.Convert(attr, c.Toks)
		lo[i], hi[i] = cc, cc
	}
	for i, attr := range g.intervalAttrs {
		c := findConstraint(r, attr)
		lo[len(g.constAttrs)+i] = c.Min
		hi[len(g.constAttrs)+i] = c.Max
	}
	g.tree.Insert(artree.Item{Rect: artree.MustBox(lo, hi), Data: r, Agg: a})
	g.rules = append(g.rules, r)
	ix.nRules++
}

func (ix *Index) maxAux() int { return ix.sel.MaxAux() }

func (ix *Index) aggOf(r *rules.Rule, g *group) *ruleAgg {
	a := ruleMerger{nConst: len(g.constAttrs), nAux: ix.maxAux()}.Zero().(*ruleAgg)
	a.depI.Extend(r.DepMin)
	a.depI.Extend(r.DepMax)
	for i, attr := range g.constAttrs {
		c := findConstraint(r, attr)
		for aux := 1; aux < ix.sel.NumPivots(attr); aux++ {
			a.auxConst[i][aux-1].Extend(
				tokens.JaccardDistance(c.Toks, ix.sel.PerAttr[attr].Toks[aux]))
		}
	}
	return a
}

func findConstraint(r *rules.Rule, attr int) *rules.Constraint {
	for i := range r.Determinants {
		if r.Determinants[i].Attr == attr {
			return &r.Determinants[i]
		}
	}
	return nil
}

// Len returns the number of indexed rules.
func (ix *Index) Len() int { return ix.nRules }

// Groups returns the number of lattice nodes.
func (ix *Index) Groups() int { return len(ix.groups) }

// QueryStats reports traversal work.
type QueryStats struct {
	GroupsVisited int
	GroupsSkipped int
	NodesVisited  int
	Verified      int
}

// Applicable streams the rules usable to impute r's missing dependent
// attribute: groups whose determinant attributes include a missing one are
// skipped outright; within a group, the aR-tree is searched with r's
// converted constants (point query on const dims, full range on interval
// dims), and constant equality is verified exactly on the leaves.
func (ix *Index) Applicable(r *tuple.Record, visit func(*rules.Rule) bool) QueryStats {
	var stats QueryStats
	for _, sig := range ix.order {
		g := ix.groups[sig]
		if !ix.groupUsable(g, r) {
			stats.GroupsSkipped++
			continue
		}
		stats.GroupsVisited++
		dims := len(g.constAttrs) + len(g.intervalAttrs)
		lo := make([]float64, dims)
		hi := make([]float64, dims)
		for i, attr := range g.constAttrs {
			cc := ix.sel.Convert(attr, r.Tokens(attr))
			lo[i], hi[i] = cc, cc
		}
		for i := range g.intervalAttrs {
			lo[len(g.constAttrs)+i] = 0
			hi[len(g.constAttrs)+i] = 1
		}
		query := artree.MustBox(lo, hi)
		stop := false
		g.tree.Traverse(
			func(rect artree.Rect, _ any) bool {
				stats.NodesVisited++
				return rect.Dims() > 0 && rect.Intersects(query)
			},
			func(it artree.Item) bool {
				if !it.Rect.Intersects(query) {
					return true
				}
				rule := it.Data.(*rules.Rule)
				stats.Verified++
				if rule.AppliesTo(r) {
					if !visit(rule) {
						stop = true
						return false
					}
				}
				return true
			},
		)
		if stop {
			break
		}
	}
	return stats
}

func (ix *Index) groupUsable(g *group, r *tuple.Record) bool {
	for _, attr := range g.constAttrs {
		if r.IsMissing(attr) {
			return false
		}
	}
	for _, attr := range g.intervalAttrs {
		if r.IsMissing(attr) {
			return false
		}
	}
	return true
}

// DepBound returns the minimal interval bounding the dependent intervals of
// every rule that might apply to r — the coarse bound the index join uses
// before materializing candidates. It unions the root aggregates of the
// usable groups.
func (ix *Index) DepBound(r *tuple.Record) agg.Interval {
	out := agg.EmptyInterval()
	for _, sig := range ix.order {
		g := ix.groups[sig]
		if !ix.groupUsable(g, r) || g.tree.Len() == 0 {
			continue
		}
		out.ExtendInterval(g.tree.RootAgg().(*ruleAgg).depI)
	}
	return out
}
