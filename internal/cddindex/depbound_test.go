package cddindex

import (
	"fmt"
	"math/rand"
	"testing"

	"terids/internal/rules"
	"terids/internal/tokens"
	"terids/internal/tuple"
)

// TestDepBoundCoversApplicableRules: for random rule sets and queries, the
// coarse DepBound must contain the dependent interval of every rule that
// actually applies — the safety property the index join's coarse query
// ranges rely on.
func TestDepBoundCoversApplicableRules(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	words := []string{"male", "female", "fever", "cough", "rash"}
	randText := func() string {
		out := ""
		for i := 0; i <= r.Intn(2); i++ {
			out += words[r.Intn(len(words))] + " "
		}
		return out
	}
	for trial := 0; trial < 30; trial++ {
		set := rules.NewSet(4)
		for i := 0; i < 40; i++ {
			var dets []rules.Constraint
			attr := r.Intn(3) // 0..2, dependent is 3
			if r.Intn(2) == 0 {
				v := randText()
				dets = append(dets, rules.Constraint{Attr: attr, Kind: rules.Const, Value: v, Toks: tokens.Tokenize(v)})
			} else {
				lo := r.Float64() * 0.5
				dets = append(dets, rules.Constraint{Attr: attr, Kind: rules.Interval, Min: lo, Max: lo + r.Float64()*0.5})
			}
			lo := r.Float64() * 0.5
			set.MustAdd(&rules.Rule{
				Kind: rules.KindCDD, Dependent: 3, Determinants: dets,
				DepMin: lo, DepMax: lo + r.Float64()*0.5,
			})
		}
		ix, err := Build(set, 3, sel4())
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 20; q++ {
			vals := []string{randText(), randText(), randText(), "-"}
			if r.Intn(4) == 0 {
				vals[r.Intn(3)] = "-"
			}
			rec := tuple.MustRecord(schema, fmt.Sprintf("q%d", q), 0, 0, vals)
			bound := ix.DepBound(rec)
			for _, rule := range set.ForDependent(3) {
				if !rule.AppliesTo(rec) {
					continue
				}
				if bound.IsEmpty() || bound.Lo > rule.DepMin || bound.Hi < rule.DepMax {
					t.Fatalf("trial %d: DepBound %+v does not cover applicable rule %v",
						trial, bound, rule)
				}
			}
		}
	}
}
