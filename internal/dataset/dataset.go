// Package dataset generates the synthetic stand-ins for the five evaluation
// datasets of Section 6.1 (Citations, Anime, Bikes, EBooks, Songs). The
// real datasets are not redistributable/offline, so each profile matches
// the shape parameters that drive the paper's measured effects: number of
// attributes, relative source sizes, per-attribute token-set sizes (EBooks
// gets a long description), duplicate rate, and topic keyword density.
// Generation is deterministic per seed; ground truth is the Equation (2)
// predicate evaluated on the complete (pre-corruption) records, mirroring
// how the paper derives ground truth for Anime/Bikes/EBooks.
package dataset

import (
	"fmt"
	"math/rand"
	"strings"

	"terids/internal/metrics"
	"terids/internal/repository"
	"terids/internal/tokens"
	"terids/internal/tuple"
)

// Profile describes one synthetic dataset's shape.
type Profile struct {
	Name string
	// Attrs are the schema attribute names.
	Attrs []string
	// SourceA/SourceB are the two stream lengths at Scale = 1.
	SourceA, SourceB int
	// Entities is the number of distinct real-world entities at Scale = 1.
	Entities int
	// TokensPerAttr is the mean token count of each attribute value.
	TokensPerAttr []int
	// VocabPerAttr is each attribute's vocabulary size.
	VocabPerAttr []int
	// PerturbRate is the per-token probability that a copy of an entity
	// replaces or drops the token (drives near-duplicate distances).
	PerturbRate float64
	// Topics is the keyword pool; TopicAttr is the attribute carrying
	// topic keywords; TopicRate is the fraction of entities that carry
	// one.
	Topics    []string
	TopicAttr int
	TopicRate float64
}

// Profiles returns the five dataset profiles, scaled down ~10x from the
// paper's sizes (Songs ~500x; its role is stressing repository size, which
// the η sweeps cover).
func Profiles() []Profile {
	return []Profile{
		{
			Name:    "Citations",
			Attrs:   []string{"title", "authors", "venue", "year"},
			SourceA: 260, SourceB: 230, Entities: 240,
			TokensPerAttr: []int{8, 5, 3, 1},
			VocabPerAttr:  []int{300, 200, 40, 30},
			PerturbRate:   0.12,
			Topics:        []string{"database", "streaming", "learning"},
			TopicAttr:     0, TopicRate: 0.12,
		},
		{
			Name:    "Anime",
			Attrs:   []string{"title", "studio", "genre", "episodes"},
			SourceA: 400, SourceB: 400, Entities: 350,
			TokensPerAttr: []int{5, 2, 3, 1},
			VocabPerAttr:  []int{250, 60, 25, 60},
			PerturbRate:   0.15,
			Topics:        []string{"fantasy", "mecha", "sports"},
			TopicAttr:     2, TopicRate: 0.14,
		},
		{
			Name:    "Bikes",
			Attrs:   []string{"model", "brand", "price", "city"},
			SourceA: 480, SourceB: 900, Entities: 500,
			TokensPerAttr: []int{4, 2, 2, 2},
			VocabPerAttr:  []int{200, 40, 120, 50},
			PerturbRate:   0.14,
			Topics:        []string{"cruiser", "scooter", "touring"},
			TopicAttr:     0, TopicRate: 0.12,
		},
		{
			Name:    "EBooks",
			Attrs:   []string{"title", "author", "genre", "description"},
			SourceA: 650, SourceB: 1410, Entities: 700,
			TokensPerAttr: []int{6, 3, 2, 26}, // long descriptions: the paper's slowest dataset
			VocabPerAttr:  []int{300, 150, 20, 700},
			PerturbRate:   0.12,
			Topics:        []string{"romance", "thriller", "history"},
			TopicAttr:     2, TopicRate: 0.12,
		},
		{
			Name:    "Songs",
			Attrs:   []string{"title", "artist", "album", "year"},
			SourceA: 2000, SourceB: 2000, Entities: 1800,
			TokensPerAttr: []int{5, 3, 4, 1},
			VocabPerAttr:  []int{600, 300, 400, 40},
			PerturbRate:   0.10,
			Topics:        []string{"rock", "jazz", "electronic"},
			TopicAttr:     0, TopicRate: 0.12,
		},
	}
}

// ProfileByName finds a profile case-insensitively.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("dataset: unknown profile %q", name)
}

// Options tunes generation.
type Options struct {
	// Scale multiplies all sizes (default 1).
	Scale float64
	// MissingRate is ξ: the fraction of stream tuples made incomplete.
	MissingRate float64
	// MissingAttrs is m: how many attributes each incomplete tuple loses.
	MissingAttrs int
	// RepoRatio is η: repository size relative to total stream length.
	RepoRatio float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultOptions mirrors Table 5's bold defaults: ξ = 0.3, m = 1, η = 0.5.
func DefaultOptions() Options {
	return Options{Scale: 1, MissingRate: 0.3, MissingAttrs: 1, RepoRatio: 0.5, Seed: 1}
}

func (o *Options) fill() {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.MissingAttrs <= 0 {
		o.MissingAttrs = 1
	}
	if o.RepoRatio <= 0 {
		o.RepoRatio = 0.5
	}
}

// Data is one generated dataset instance.
type Data struct {
	Profile Profile
	Schema  *tuple.Schema
	// Repo is the static complete repository R.
	Repo *repository.Repository
	// Stream is the merged two-stream arrival sequence with missing values
	// injected (stream 0 = source A, stream 1 = source B).
	Stream []*tuple.Record
	// Complete holds each stream record's pre-corruption version, by RID.
	Complete map[string]*tuple.Record
	// Keywords is the profile's topic pool (the query keyword set K).
	Keywords []string
}

// Generate builds a dataset instance.
func Generate(p Profile, opt Options) (*Data, error) {
	opt.fill()
	schema, err := tuple.NewSchema(p.Attrs...)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	g := &generator{p: p, opt: opt, schema: schema, rng: rng}
	g.buildVocab()
	g.buildEntities()

	data := &Data{
		Profile:  p,
		Schema:   schema,
		Keywords: append([]string(nil), p.Topics...),
		Complete: make(map[string]*tuple.Record),
	}

	// Streams: each source samples entities (with replacement beyond the
	// entity count, giving duplicates within and across sources).
	nA := scale(p.SourceA, opt.Scale)
	nB := scale(p.SourceB, opt.Scale)
	var all []*tuple.Record
	seq := int64(0)
	mk := func(stream int, n int, tag string) {
		for i := 0; i < n; i++ {
			ent := g.pickEntity()
			rid := fmt.Sprintf("%s%s%05d", p.Name[:1], tag, i)
			complete := g.copyOf(ent, schema, rid, stream, seq)
			corrupted := g.corrupt(complete, rid, stream, seq)
			data.Complete[rid] = complete
			all = append(all, corrupted)
			seq++
		}
	}
	mk(0, nA, "a")
	mk(1, nB, "b")
	// Interleave by shuffling arrival order, then reassign Seq in order.
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	for i, r := range all {
		reSeq(r, int64(i))
		reSeq(data.Complete[r.RID], int64(i))
	}
	data.Stream = all

	// Repository: complete perturbed copies of entities (historical data).
	nRepo := int(float64(nA+nB) * opt.RepoRatio)
	if nRepo < 4 {
		nRepo = 4
	}
	var samples []*tuple.Record
	for i := 0; i < nRepo; i++ {
		ent := g.pickEntity()
		rid := fmt.Sprintf("%sr%05d", p.Name[:1], i)
		samples = append(samples, g.copyOf(ent, schema, rid, 0, 0))
	}
	repo, err := repository.Build(schema, samples)
	if err != nil {
		return nil, err
	}
	data.Repo = repo
	return data, nil
}

func scale(n int, s float64) int {
	out := int(float64(n) * s)
	if out < 2 {
		out = 2
	}
	return out
}

// reSeq rebuilds a record with a new sequence number (records are otherwise
// immutable).
func reSeq(r *tuple.Record, seq int64) {
	r.Seq = seq
}

type generator struct {
	p      Profile
	opt    Options
	schema *tuple.Schema
	rng    *rand.Rand
	vocab  [][]string
	// entities[e][x] is entity e's canonical token list on attribute x.
	entities [][][]string
	// hasTopic[e] marks topic-bearing entities.
	hasTopic []bool
}

func (g *generator) buildVocab() {
	g.vocab = make([][]string, len(g.p.Attrs))
	for x := range g.p.Attrs {
		words := make([]string, g.p.VocabPerAttr[x])
		for i := range words {
			words[i] = fmt.Sprintf("%s%d", attrPrefix(g.p.Attrs[x]), i)
		}
		g.vocab[x] = words
	}
}

func attrPrefix(attr string) string {
	if len(attr) > 2 {
		return attr[:2]
	}
	return attr
}

// zipfIndex draws a skewed index in [0, n): low indexes are more frequent,
// giving realistic repeated values (and frequent constants for CDD
// conditioning).
func (g *generator) zipfIndex(n int) int {
	u := g.rng.Float64()
	return int(u * u * float64(n))
}

func (g *generator) buildEntities() {
	n := scale(g.p.Entities, g.opt.Scale)
	g.entities = make([][][]string, n)
	g.hasTopic = make([]bool, n)
	for e := 0; e < n; e++ {
		attrs := make([][]string, len(g.p.Attrs))
		for x := range g.p.Attrs {
			k := g.p.TokensPerAttr[x]
			// +/- 30% size jitter, at least 1 token.
			k = k - k/3 + g.rng.Intn(1+2*k/3)
			if k < 1 {
				k = 1
			}
			toks := make([]string, 0, k)
			seen := map[string]bool{}
			for len(toks) < k {
				w := g.vocab[x][g.zipfIndex(len(g.vocab[x]))]
				if !seen[w] {
					seen[w] = true
					toks = append(toks, w)
				}
			}
			attrs[x] = toks
		}
		if g.rng.Float64() < g.p.TopicRate {
			g.hasTopic[e] = true
			topic := g.p.Topics[g.rng.Intn(len(g.p.Topics))]
			attrs[g.p.TopicAttr] = append(attrs[g.p.TopicAttr], topic)
		}
		g.entities[e] = attrs
	}
}

func (g *generator) pickEntity() int {
	return g.zipfIndex(len(g.entities))
}

// copyOf materializes a perturbed complete copy of entity ent.
func (g *generator) copyOf(ent int, schema *tuple.Schema, rid string, stream int, seq int64) *tuple.Record {
	vals := make([]string, len(g.p.Attrs))
	for x := range g.p.Attrs {
		toks := g.entities[ent][x]
		out := make([]string, 0, len(toks))
		for _, tok := range toks {
			switch {
			case g.rng.Float64() < g.p.PerturbRate/2:
				// Drop the token.
			case g.rng.Float64() < g.p.PerturbRate:
				out = append(out, g.vocab[x][g.rng.Intn(len(g.vocab[x]))])
			default:
				out = append(out, tok)
			}
		}
		if len(out) == 0 {
			out = append(out, toks[0])
		}
		vals[x] = strings.Join(out, " ")
	}
	rec := tuple.MustRecord(schema, rid, stream, seq, vals)
	rec.EntityID = ent
	return rec
}

// corrupt injects missing attributes per ξ and m.
func (g *generator) corrupt(complete *tuple.Record, rid string, stream int, seq int64) *tuple.Record {
	if g.rng.Float64() >= g.opt.MissingRate {
		cp := tuple.MustRecord(g.schema, rid, stream, seq, values(complete))
		cp.EntityID = complete.EntityID
		return cp
	}
	vals := values(complete)
	d := len(vals)
	m := g.opt.MissingAttrs
	if m > d-1 {
		m = d - 1 // keep at least one attribute for rules to hold on to
	}
	perm := g.rng.Perm(d)
	for i := 0; i < m; i++ {
		vals[perm[i]] = tuple.Missing
	}
	cp := tuple.MustRecord(g.schema, rid, stream, seq, vals)
	cp.EntityID = complete.EntityID
	return cp
}

func values(r *tuple.Record) []string {
	out := make([]string, r.D())
	for j := 0; j < r.D(); j++ {
		out[j] = r.Value(j)
	}
	return out
}

// TruthPairs computes the ground-truth matching pairs for a window size w,
// similarity threshold gamma, and the dataset's keywords: pairs of
// cross-stream tuples that co-exist in some pair of windows whose COMPLETE
// versions satisfy the Equation (2) predicate (topic containment plus
// similarity above gamma). This mirrors the paper's predicate-derived
// ground truth.
func (d *Data) TruthPairs(w int, gamma float64) map[metrics.PairKey]bool {
	kw := tokens.New(d.Keywords...)
	truth := make(map[metrics.PairKey]bool)
	// Per-stream ring of live records, replayed in arrival order.
	live := [][]*tuple.Record{nil, nil}
	for _, r := range d.Stream {
		mine := r.Stream
		other := 1 - mine
		rc := d.Complete[r.RID]
		for _, o := range live[other] {
			oc := d.Complete[o.RID]
			if !rc.ContainsAnyKeyword(kw) && !oc.ContainsAnyKeyword(kw) {
				continue
			}
			if tuple.Sim(rc, oc) > gamma {
				truth[metrics.Key(r.RID, o.RID)] = true
			}
		}
		live[mine] = append(live[mine], r)
		if len(live[mine]) > w {
			live[mine] = live[mine][1:]
		}
	}
	return truth
}

// Stats summarizes a generated dataset for Table 4 style reporting.
type Stats struct {
	Name             string
	SourceA, SourceB int
	RepoSize         int
	Incomplete       int
	TruthMatches     int
}

// ComputeStats derives Table 4 style statistics under the given window and
// gamma.
func (d *Data) ComputeStats(w int, gamma float64) Stats {
	st := Stats{Name: d.Profile.Name, RepoSize: d.Repo.Len()}
	for _, r := range d.Stream {
		if r.Stream == 0 {
			st.SourceA++
		} else {
			st.SourceB++
		}
		if !r.IsComplete() {
			st.Incomplete++
		}
	}
	st.TruthMatches = len(d.TruthPairs(w, gamma))
	return st
}
