package dataset

import (
	"fmt"
	"testing"

	"terids/internal/tokens"
)

func TestProfiles(t *testing.T) {
	ps := Profiles()
	if len(ps) != 5 {
		t.Fatalf("want 5 profiles, got %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
		if len(p.Attrs) != len(p.TokensPerAttr) || len(p.Attrs) != len(p.VocabPerAttr) {
			t.Errorf("%s: attribute metadata lengths inconsistent", p.Name)
		}
		if p.TopicAttr < 0 || p.TopicAttr >= len(p.Attrs) {
			t.Errorf("%s: topic attribute out of range", p.Name)
		}
		if len(p.Topics) == 0 {
			t.Errorf("%s: no topics", p.Name)
		}
	}
	for _, want := range []string{"Citations", "Anime", "Bikes", "EBooks", "Songs"} {
		if !names[want] {
			t.Errorf("missing profile %s", want)
		}
	}
	// EBooks must have the longest attribute (the paper's explanation for
	// its cost).
	eb, _ := ProfileByName("ebooks")
	max := 0
	for _, n := range eb.TokensPerAttr {
		if n > max {
			max = n
		}
	}
	if max < 20 {
		t.Errorf("EBooks longest attribute %d tokens; want a long description", max)
	}
}

func TestProfileByName(t *testing.T) {
	if _, err := ProfileByName("citations"); err != nil {
		t.Fatal(err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile must fail")
	}
}

func TestGenerateShape(t *testing.T) {
	p, _ := ProfileByName("Citations")
	opt := DefaultOptions()
	opt.Scale = 0.2
	d, err := Generate(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d.Schema.D() != 4 {
		t.Fatalf("schema D = %d", d.Schema.D())
	}
	wantLen := scale(p.SourceA, 0.2) + scale(p.SourceB, 0.2)
	if len(d.Stream) != wantLen {
		t.Fatalf("stream length %d, want %d", len(d.Stream), wantLen)
	}
	if d.Repo.Len() == 0 {
		t.Fatal("empty repository")
	}
	// Every stream record has a complete twin.
	for _, r := range d.Stream {
		c, ok := d.Complete[r.RID]
		if !ok {
			t.Fatalf("record %s lacks a complete twin", r.RID)
		}
		if !c.IsComplete() {
			t.Fatalf("complete twin of %s is incomplete", r.RID)
		}
		if c.EntityID != r.EntityID {
			t.Fatalf("entity mismatch for %s", r.RID)
		}
		// Non-missing attributes agree with the twin.
		for j := 0; j < r.D(); j++ {
			if !r.IsMissing(j) && r.Value(j) != c.Value(j) {
				t.Fatalf("record %s attr %d differs from twin", r.RID, j)
			}
		}
	}
	// Seq values are consecutive in arrival order.
	for i, r := range d.Stream {
		if r.Seq != int64(i) {
			t.Fatalf("stream[%d].Seq = %d", i, r.Seq)
		}
	}
}

func TestGenerateMissingRate(t *testing.T) {
	p, _ := ProfileByName("Anime")
	for _, xi := range []float64{0, 0.3, 0.8} {
		opt := DefaultOptions()
		opt.Scale = 0.3
		opt.MissingRate = xi
		d, err := Generate(p, opt)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, r := range d.Stream {
			if !r.IsComplete() {
				n++
			}
		}
		got := float64(n) / float64(len(d.Stream))
		if got < xi-0.12 || got > xi+0.12 {
			t.Errorf("ξ=%v: observed missing rate %v", xi, got)
		}
	}
}

func TestGenerateMissingAttrs(t *testing.T) {
	p, _ := ProfileByName("Bikes")
	opt := DefaultOptions()
	opt.Scale = 0.2
	opt.MissingRate = 1.0
	opt.MissingAttrs = 2
	d, err := Generate(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range d.Stream {
		if r.MissingCount() != 2 {
			t.Fatalf("record %s has %d missing attrs, want 2", r.RID, r.MissingCount())
		}
	}
	// m capped at d-1.
	opt.MissingAttrs = 10
	d, err = Generate(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range d.Stream {
		if r.MissingCount() != r.D()-1 {
			t.Fatalf("m must cap at d-1, got %d", r.MissingCount())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("Citations")
	opt := DefaultOptions()
	opt.Scale = 0.2
	a, err := Generate(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Stream) != len(b.Stream) {
		t.Fatal("stream lengths differ")
	}
	for i := range a.Stream {
		if a.Stream[i].String() != b.Stream[i].String() {
			t.Fatalf("record %d differs across identical seeds", i)
		}
	}
	opt.Seed = 99
	c, _ := Generate(p, opt)
	same := true
	for i := range a.Stream {
		if a.Stream[i].String() != c.Stream[i].String() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
}

func TestRepoRatio(t *testing.T) {
	p, _ := ProfileByName("Anime")
	sizes := map[float64]int{}
	for _, eta := range []float64{0.1, 0.5} {
		opt := DefaultOptions()
		opt.Scale = 0.3
		opt.RepoRatio = eta
		d, err := Generate(p, opt)
		if err != nil {
			t.Fatal(err)
		}
		sizes[eta] = d.Repo.Len()
	}
	if sizes[0.5] <= sizes[0.1] {
		t.Fatalf("η=0.5 repo (%d) must exceed η=0.1 repo (%d)", sizes[0.5], sizes[0.1])
	}
}

func TestTruthPairs(t *testing.T) {
	p, _ := ProfileByName("Citations")
	opt := DefaultOptions()
	opt.Scale = 0.3
	d, err := Generate(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	gamma := 2.0
	truth := d.TruthPairs(50, gamma)
	if len(truth) == 0 {
		t.Fatal("no ground-truth matches; duplicates must exist")
	}
	kw := tokens.New(d.Keywords...)
	// Spot-check: every truth pair satisfies the predicate on complete
	// versions.
	for k := range truth {
		a, b := d.Complete[k.A], d.Complete[k.B]
		if a.Stream == b.Stream {
			t.Fatalf("truth pair %v is same-stream", k)
		}
		if !a.ContainsAnyKeyword(kw) && !b.ContainsAnyKeyword(kw) {
			t.Fatalf("truth pair %v has no topic keyword", k)
		}
	}
	// A bigger window cannot shrink the truth.
	bigger := d.TruthPairs(500, gamma)
	if len(bigger) < len(truth) {
		t.Fatal("larger window must cover at least the same truth pairs")
	}
}

func TestComputeStats(t *testing.T) {
	p, _ := ProfileByName("Anime")
	opt := DefaultOptions()
	opt.Scale = 0.2
	d, err := Generate(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	st := d.ComputeStats(50, 2.0)
	if st.Name != "Anime" {
		t.Fatal("stats name wrong")
	}
	if st.SourceA+st.SourceB != len(d.Stream) {
		t.Fatal("source sizes wrong")
	}
	if st.RepoSize != d.Repo.Len() {
		t.Fatal("repo size wrong")
	}
	if st.Incomplete == 0 {
		t.Fatal("default ξ=0.3 must produce incomplete tuples")
	}
}

func TestAllProfilesGenerate(t *testing.T) {
	for _, p := range Profiles() {
		opt := DefaultOptions()
		opt.Scale = 0.05
		d, err := Generate(p, opt)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if len(d.Stream) == 0 || d.Repo.Len() == 0 {
			t.Fatalf("%s: empty output", p.Name)
		}
		// RIDs unique.
		seen := map[string]bool{}
		for _, r := range d.Stream {
			if seen[r.RID] {
				t.Fatalf("%s: duplicate RID %s", p.Name, r.RID)
			}
			seen[r.RID] = true
		}
	}
}

func TestZipfSkew(t *testing.T) {
	p, _ := ProfileByName("Citations")
	opt := DefaultOptions()
	opt.Scale = 0.5
	d, err := Generate(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	// The zipf-ish entity picker must create repeated entities (duplicate
	// records) — count entity multiplicity.
	counts := map[int]int{}
	for _, r := range d.Stream {
		counts[r.EntityID]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount < 3 {
		t.Fatalf("expected skewed entity repetition, max multiplicity %d", maxCount)
	}
	_ = fmt.Sprint(maxCount)
}
